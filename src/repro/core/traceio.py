"""Trace serialization: save and replay per-core memory-op traces.

Workload trace generation costs real time at large scales; exporting the
generated traces to ``.npz`` lets sweeps replay identical inputs across
configurations (and lets external tools consume them).  Dependence edges
are stored flattened with an offsets array, CSR-style.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.types import AccessType
from repro.core.trace import Trace, TraceBuilder

_KIND_CODES = {AccessType.LOAD: 0, AccessType.STORE: 1, AccessType.RMW: 2}
_CODE_KINDS = {v: k for k, v in _KIND_CODES.items()}


def save_traces(path: str | Path, traces: list[Trace]) -> None:
    """Serialize per-core traces to a single ``.npz`` file."""
    payload: dict[str, np.ndarray] = {
        "n_traces": np.array([len(traces)], dtype=np.int64),
    }
    for t, trace in enumerate(traces):
        ops = trace.ops
        payload[f"t{t}_kind"] = np.array(
            [_KIND_CODES[op.kind] for op in ops], dtype=np.int8)
        payload[f"t{t}_addr"] = np.array([op.addr for op in ops],
                                         dtype=np.int64)
        payload[f"t{t}_size"] = np.array([op.size for op in ops],
                                         dtype=np.int16)
        payload[f"t{t}_extra"] = np.array([op.extra_instrs for op in ops],
                                          dtype=np.int32)
        payload[f"t{t}_atomic"] = np.array([op.atomic for op in ops],
                                           dtype=np.int8)
        payload[f"t{t}_pc"] = np.array([op.pc for op in ops],
                                       dtype=np.int32)
        payload[f"t{t}_tag"] = np.array([op.tag for op in ops],
                                        dtype=np.int64)
        deps = [d for op in ops for d in op.deps]
        offsets = np.zeros(len(ops) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum([len(op.deps) for op in ops])
        payload[f"t{t}_deps"] = np.array(deps, dtype=np.int64)
        payload[f"t{t}_dep_offsets"] = offsets
        payload[f"t{t}_tail"] = np.array([trace.tail_instrs],
                                         dtype=np.int64)
    np.savez_compressed(path, **payload)


def load_traces(path: str | Path) -> list[Trace]:
    """Reload traces saved with :func:`save_traces`."""
    data = np.load(path)
    n = int(data["n_traces"][0])
    traces = []
    for t in range(n):
        tb = TraceBuilder()
        kinds = data[f"t{t}_kind"]
        addrs = data[f"t{t}_addr"]
        sizes = data[f"t{t}_size"]
        extras = data[f"t{t}_extra"]
        atomics = data[f"t{t}_atomic"]
        pcs = data[f"t{t}_pc"]
        tags = data[f"t{t}_tag"]
        deps = data[f"t{t}_deps"]
        offs = data[f"t{t}_dep_offsets"]
        for i in range(len(kinds)):
            kind = _CODE_KINDS[int(kinds[i])]
            dep = tuple(int(d) for d in deps[offs[i]:offs[i + 1]])
            common = dict(addr=int(addrs[i]), size=int(sizes[i]), deps=dep,
                          extra=int(extras[i]), pc=int(pcs[i]),
                          tag=int(tags[i]))
            if kind == AccessType.LOAD:
                tb.load(**common)
            elif kind == AccessType.STORE:
                tb.store(atomic=bool(atomics[i]), **common)
            else:
                tb.rmw(atomic=bool(atomics[i]), **common)
        trace = tb.finish()
        trace.tail_instrs = int(data[f"t{t}_tail"][0])
        traces.append(trace)
    return traces

"""Core substrate: traces, the OoO window model, multicore interleaving."""

from repro.core.multicore import Multicore
from repro.core.ooo import AtomicsArbiter, CoreModel
from repro.core.trace import Trace, TraceBuilder, split_static

__all__ = [
    "AtomicsArbiter",
    "CoreModel",
    "Multicore",
    "Trace",
    "TraceBuilder",
    "split_static",
]

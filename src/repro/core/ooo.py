"""Limited-window out-of-order core timing model.

The model is the trace-driven analogue of the paper's gem5 O3 configuration
(8-wide, ROB 224, LQ 72, SQ 56).  It reproduces the *structural* behaviour
the paper attributes the baseline's poor bandwidth to (Section 2.2):

* the frontend feeds at most ``width`` instructions per cycle, so address
  arithmetic consumes fetch slots;
* an op cannot issue before the ops its address depends on complete
  (the index-load -> indirect-load chain);
* ROB / LQ / SQ occupancy bounds in-flight memory ops, and the in-order
  retire of the ROB head blocks the window behind a long miss;
* atomic RMWs serialize per core: each waits for the previous atomic's
  completion plus a fence cost (line locking + store-buffer drain).

Completion times are resolved lazily from the cache hierarchy so that
independent misses pile up inside the memory controller's request buffer
before being scheduled — the visibility window FR-FCFS reorders within.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.common.config import CoreConfig
from repro.common.stats import Stats
from repro.common.types import AccessType, MemOp
from repro.cache.hierarchy import AccessResult, MemoryHierarchy
from repro.core.trace import Trace
from repro.dram.system import DRAMSystem


class AtomicsArbiter:
    """Per-core serialization of atomic RMW operations.

    x86 atomics lock the target cache line and fence the store buffer.
    Within a core, consecutive atomics to different lines overlap only
    partially (OVERLAP-deep pipelining of the line acquisitions), so each
    atomic delays the next by ``fence + exposed_latency/OVERLAP``.  Cached
    atomics come out ~4-5x slower than plain RMWs (the Free Atomics
    measurement the paper cites); atomics that miss to DRAM expose a
    quarter of the memory latency each — which is why RMW-heavy kernels
    like IS gain so much from DX100's fence-free exclusive-writer
    execution.
    """

    OVERLAP = 4

    def __init__(self, fence_cycles: int) -> None:
        self.fence_cycles = fence_cycles
        self._free_at: dict[int, int] = {}

    def acquire(self, core: int, t: int) -> int:
        """Earliest cycle an atomic presented at ``t`` may issue."""
        free = self._free_at.get(core, 0)
        return free if free > t else t

    def release(self, core: int, issue: int, completion: int) -> None:
        exposed = completion - issue
        exposed = exposed // self.OVERLAP if exposed > 0 else 0
        busy_until = issue + self.fence_cycles + exposed
        if busy_until > self._free_at.get(core, 0):
            self._free_at[core] = busy_until


@dataclass(slots=True)
class _InFlight:
    op: MemOp
    result: AccessResult
    instrs: int  # ROB occupancy contribution (op + its extra instructions)
    in_iq: bool = False   # consumers still parked in the issue queue
    iq_instrs: int = 0    # IQ occupancy contribution while unresolved


class CoreModel:
    """Timing model for one core executing one trace."""

    def __init__(self, core_id: int, config: CoreConfig,
                 hierarchy: MemoryHierarchy, dram: DRAMSystem,
                 atomics: AtomicsArbiter | None = None) -> None:
        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.dram = dram
        self.atomics = atomics or AtomicsArbiter(config.atomic_fence_cycles)
        self.stats = Stats()
        # Observability bus; None (one branch on forced retire) when off.
        self.obs: Any = None
        self._window: deque[_InFlight] = deque()
        # Flights whose consumers still occupy issue-queue slots, in window
        # (append) order.  Retired flights are removed lazily: they stay in
        # the deque with ``in_iq`` already cleared and get skipped/popped on
        # the next drain, so the per-op IQ scan touches only IQ residents
        # instead of the whole ROB window.
        self._iq_flights: deque[_InFlight] = deque()
        self._rob_used = 0
        self._iq_used = 0
        self._lq_used = 0
        self._sq_used = 0
        self._fetch_time = 0.0
        self._trace: Trace | None = None
        self._next = 0
        self._finish = 0

    # --------------------------------------------------------------- control

    def start(self, trace: Trace, at: int = 0) -> None:
        self._trace = trace
        self._next = 0
        self._fetch_time = float(at)
        self._finish = at

    @property
    def done(self) -> bool:
        return self._trace is None or self._next >= len(self._trace.ops)

    @property
    def next_time(self) -> float:
        """Approximate time of the next op's dispatch (for interleaving)."""
        return self._fetch_time

    # --------------------------------------------------------------- helpers

    def _complete(self, flight: _InFlight) -> int:
        # ``AccessResult.resolve`` inlined: one call per op completion.
        result = flight.result
        done = result.complete
        if done < 0:
            request = result.request
            if request.finish < 0:
                self.dram.complete(request)
            done = request.finish + result.return_latency
            result.complete = done
        flight.op.complete = done
        return done

    def _drain_iq(self, now: float) -> None:
        """Free IQ slots whose load completed by wall-clock ``now``."""
        if not self._iq_used:
            if self._iq_flights:
                self._iq_flights.clear()   # only lazily-retired leftovers
            return
        # Single pass with a rebuild instead of rotating the deque through
        # popleft/append: survivors keep their relative (window) order.
        flights = self._iq_flights
        kept: list[_InFlight] = []
        keep = kept.append
        iq_used = self._iq_used
        for flight in flights:
            if not flight.in_iq:
                continue
            complete = flight.result.complete
            if 0 <= complete <= now:
                flight.in_iq = False
                iq_used -= flight.iq_instrs
            else:
                keep(flight)
        self._iq_used = iq_used
        flights.clear()
        flights.extend(kept)

    def _retire_oldest(self, forced: bool = False) -> None:
        flight = self._window.popleft()
        # ``_complete`` inlined (one call per retired op).
        result = flight.result
        done = result.complete
        if done < 0:
            request = result.request
            if request.finish < 0:
                self.dram.complete(request)
            done = request.finish + result.return_latency
            result.complete = done
        flight.op.complete = done
        self._rob_used -= flight.instrs
        if flight.in_iq:
            self._iq_used -= flight.iq_instrs
            flight.in_iq = False
        if flight.op.kind is AccessType.LOAD:
            self._lq_used -= 1
        else:
            self._sq_used -= 1
        if done > self._finish:
            self._finish = done
        if forced:
            # Structural stall: fetch was blocked until the ROB head
            # completed — this head-of-line burstiness is what keeps the
            # baseline's sustained request rate (and the controller's
            # request-buffer occupancy) low (Section 6.2).
            if done > self._fetch_time:
                if self.obs is not None:
                    self.obs.core_span(self.core_id, "rob-blocked",
                                       self._fetch_time, done)
                self._fetch_time = float(done)
        else:
            refill = done - self._rob_used / self.config.width
            if refill > self._fetch_time:
                self._fetch_time = refill

    def _window_span_cycles(self) -> float:
        # Time the remaining window contents take to refill the frontend.
        return self._rob_used / self.config.width

    def _dep_ready(self, op: MemOp) -> int:
        ready = 0
        for dep_idx in op.deps:
            dep_op = self._trace.ops[dep_idx]
            if dep_op.complete < 0:
                # Find it in the window and resolve.
                for flight in self._window:
                    if flight.op is dep_op:
                        dep_op.complete = self._complete(flight)
                        break
                else:
                    raise RuntimeError(
                        f"dependence on op {dep_idx} which never executed"
                    )
            ready = max(ready, dep_op.complete)
        return ready

    # --------------------------------------------------------------- stepping

    def step(self) -> MemOp:
        """Execute the next memory op of the trace; returns it."""
        if self.done:
            raise RuntimeError("trace exhausted")
        op = self._trace.ops[self._next]
        self._next += 1
        cfg = self.config
        counters = self.stats.counters
        window = self._window
        instrs = 1 + op.extra_instrs
        is_load = op.kind is AccessType.LOAD

        # Frontend: fetch/decode bandwidth.
        self._fetch_time += instrs / cfg.width
        dispatch = self._fetch_time

        # Structural stalls: free ROB / LQ / SQ / IQ space by retiring in
        # order.  The IQ is the binding window for indirect kernels: the
        # consumer instructions of every outstanding miss sit unissued in
        # the 50-entry issue queue, so only a few iterations' misses can be
        # in flight at once (the paper's Section 6.2 analysis).
        while window and self._rob_used + instrs > cfg.rob_size:
            counters["rob_stalls"] += 1
            self._retire_oldest(forced=True)
        # ``_iq_used`` is only consulted here, so draining can wait until
        # the (over-)estimate signals pressure: if the undrained count fits,
        # the drained one fits too and the stall loop is skipped either way.
        if self._iq_used + instrs > cfg.iq_size:
            self._drain_iq(self._fetch_time)
            while self._iq_used + instrs > cfg.iq_size:
                # Wait (wall-clock) for the oldest miss holding IQ slots.
                iq_flights = self._iq_flights
                while iq_flights and not iq_flights[0].in_iq:
                    iq_flights.popleft()   # retired lazily; discard
                if not iq_flights:
                    break
                counters["iq_stalls"] += 1
                done = self._complete(iq_flights[0])
                if done > self._fetch_time:
                    self._fetch_time = float(done)
                self._drain_iq(self._fetch_time)
        if is_load:
            while window and self._lq_used >= cfg.lq_size:
                counters["lq_stalls"] += 1
                self._retire_oldest(forced=True)
        else:
            while window and self._sq_used >= cfg.sq_size:
                counters["sq_stalls"] += 1
                self._retire_oldest(forced=True)
        if self._fetch_time > dispatch:
            dispatch = self._fetch_time

        # Data dependences: the address is ready when producers complete.
        issue = int(dispatch)
        if op.deps:
            ready = self._dep_ready(op)
            if ready > issue:
                issue = ready

        if op.atomic:
            issue = self.atomics.acquire(self.core_id, issue)
            counters["atomics"] += 1

        result = self.hierarchy.access(self.core_id, op.addr,
                                       op.kind.is_write, issue, pc=op.pc,
                                       tag=op.tag)
        op.issue = result.issue
        op.level = result.level
        complete = result.complete
        if complete >= 0:
            op.complete = complete

        if op.atomic:
            # The line lock / fence delays this core's next atomic.
            op.complete = result.resolve(self.dram)
            self.atomics.release(self.core_id, issue, op.complete)
            complete = result.complete

        flight = _InFlight(op, result, instrs)
        if complete < 0:
            # Miss: the op and roughly half its attributed instructions
            # (the value consumers) wait in the issue queue until the line
            # returns; the rest (address generation, control) issued early.
            flight.iq_instrs = 1 + op.extra_instrs // 2
            flight.in_iq = True
            self._iq_used += flight.iq_instrs
            self._iq_flights.append(flight)
        window.append(flight)
        self._rob_used += instrs
        if is_load:
            self._lq_used += 1
        else:
            self._sq_used += 1
        counters["ops"] += 1
        counters["instructions"] += instrs
        return op

    def drain(self) -> int:
        """Retire everything outstanding; returns the core's finish cycle."""
        while self._window:
            self._retire_oldest()
        self._iq_flights.clear()   # all retired above; drop stale refs
        tail = self._trace.tail_instrs if self._trace else 0
        if tail:
            self.stats.add("instructions", tail)
            self._fetch_time += tail / self.config.width
        self._finish = max(self._finish, int(self._fetch_time))
        return self._finish

    def run(self, trace: Trace, at: int = 0) -> int:
        """Convenience single-core execution: returns the finish cycle."""
        self.start(trace, at)
        while not self.done:
            self.step()
        return self.drain()

"""Multicore execution: time-ordered interleaving of per-core traces.

Cores share the LLC, the DRAM system, and the atomics arbiter; their traces
are advanced in approximate global time order (always stepping the core
whose frontend is furthest behind), which lets contention effects —
row conflicts between cores, shared-LLC capacity, atomic serialization —
emerge from the shared component state.
"""

from __future__ import annotations

import heapq

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.ooo import AtomicsArbiter, CoreModel
from repro.core.trace import Trace
from repro.dram.system import DRAMSystem


class Multicore:
    """A pool of :class:`CoreModel` sharing one memory system."""

    #: Core model class; the batched front-end substitutes its fused
    #: subclass here (:class:`repro.core.batched.BatchedMulticore`).
    core_cls = CoreModel

    def __init__(self, config: SystemConfig, hierarchy: MemoryHierarchy,
                 dram: DRAMSystem) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.dram = dram
        self.atomics = AtomicsArbiter(config.core.atomic_fence_cycles)
        self.cores = [
            self.core_cls(i, config.core, hierarchy, dram, self.atomics)
            for i in range(config.cores)
        ]

    def run(self, traces: list[Trace], at: int = 0) -> int:
        """Run one trace per core concurrently; returns the last finish."""
        if len(traces) > len(self.cores):
            raise ValueError(
                f"{len(traces)} traces for {len(self.cores)} cores"
            )
        active = []
        for i, trace in enumerate(traces):
            self.cores[i].start(trace, at)
            if not self.cores[i].done:
                heapq.heappush(active, (self.cores[i].next_time, i))
        while active:
            _, i = heapq.heappop(active)
            core = self.cores[i]
            core.step()
            if not core.done:
                heapq.heappush(active, (core.next_time, i))
        finish = at
        for i in range(len(traces)):
            finish = max(finish, self.cores[i].drain())
        return finish

    def total_instructions(self) -> float:
        return sum(c.stats.get("instructions") for c in self.cores)

    def merged_stats(self) -> Stats:
        stats = Stats()
        for core in self.cores:
            stats.merge(core.stats)
        return stats

"""Memory-operation traces and the builder workloads use to emit them.

A trace is the per-core instruction stream reduced to what the timing model
needs: memory operations with address, dependence edges (which earlier op
produced this op's address), and the count of non-memory instructions
attributed to each op (address arithmetic, loop control, compute).  The
instruction totals feed Figure 11(a); the dependence edges are what throttle
the baseline's memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import AccessType, MemOp


@dataclass
class Trace:
    """One core's dynamic stream."""

    ops: list[MemOp] = field(default_factory=list)
    tail_instrs: int = 0  # trailing non-memory instructions after the last op

    @property
    def instructions(self) -> int:
        """Total dynamic instruction count (memory + attributed compute)."""
        return sum(1 + op.extra_instrs for op in self.ops) + self.tail_instrs

    def __len__(self) -> int:
        return len(self.ops)


class TraceBuilder:
    """Incrementally builds a :class:`Trace`.

    ``load``/``store``/``rmw`` return the op's index so later ops can name it
    in ``deps``.  ``compute(n)`` attributes ``n`` standalone instructions to
    the *next* op (or to the trace tail if no op follows).
    """

    def __init__(self) -> None:
        self._trace = Trace()
        self._ops = self._trace.ops
        self._pending_extra = 0

    def compute(self, n: int) -> None:
        if n < 0:
            raise ValueError("instruction count must be non-negative")
        self._pending_extra += n

    # ``load``/``store``/``rmw`` each inline the emit body: workloads call
    # them once per dynamic memory op, so trace construction pays one
    # function call per op instead of two.

    def load(self, addr: int, size: int = 8, deps: tuple[int, ...] = (),
             extra: int = 0, pc: int = 0, tag: int = -1) -> int:
        ops = self._ops
        n = len(ops)
        if deps:
            for d in deps:
                if not 0 <= d < n:
                    raise ValueError(f"dependence on unknown op {d}")
        ops.append(MemOp(AccessType.LOAD, addr, size, deps,
                         extra + self._pending_extra, False, pc, tag))
        self._pending_extra = 0
        return n

    def store(self, addr: int, size: int = 8, deps: tuple[int, ...] = (),
              extra: int = 0, atomic: bool = False, pc: int = 0,
              tag: int = -1) -> int:
        ops = self._ops
        n = len(ops)
        if deps:
            for d in deps:
                if not 0 <= d < n:
                    raise ValueError(f"dependence on unknown op {d}")
        ops.append(MemOp(AccessType.STORE, addr, size, deps,
                         extra + self._pending_extra, atomic, pc, tag))
        self._pending_extra = 0
        return n

    def rmw(self, addr: int, size: int = 8, deps: tuple[int, ...] = (),
            extra: int = 0, atomic: bool = False, pc: int = 0,
            tag: int = -1) -> int:
        ops = self._ops
        n = len(ops)
        if deps:
            for d in deps:
                if not 0 <= d < n:
                    raise ValueError(f"dependence on unknown op {d}")
        ops.append(MemOp(AccessType.RMW, addr, size, deps,
                         extra + self._pending_extra, atomic, pc, tag))
        self._pending_extra = 0
        return n

    def finish(self) -> Trace:
        self._trace.tail_instrs += self._pending_extra
        self._pending_extra = 0
        return self._trace


def split_static(items, ways: int) -> list[list]:
    """Deal an iteration list across ``ways`` cores in contiguous blocks,
    OpenMP ``schedule(static)`` style."""
    if ways <= 0:
        raise ValueError("ways must be positive")
    out: list[list] = [[] for _ in range(ways)]
    chunk = max(1, len(items) // ways)
    for i, item in enumerate(items):
        out[min((i // chunk), ways - 1)].append(item)
    return out

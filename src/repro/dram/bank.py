"""Per-bank and per-rank DRAM timing state.

Each bank tracks its open row and the earliest cycles at which the next
ACT / PRE / column command may legally issue, derived from the JEDEC
constraints in :class:`repro.common.config.DDR4Timing`.  Ranks additionally
track the tRRD activate-to-activate spacing and the tFAW four-activate
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import DDR4Timing


@dataclass(slots=True)
class BankState:
    """Timing state for one DRAM bank (open-page policy)."""

    open_row: int | None = None
    act_ready: int = 0    # earliest next ACT
    pre_ready: int = 0    # earliest next PRE
    col_ready: int = 0    # earliest next RD/WR to this bank
    last_act: int = -(1 << 30)

    def is_hit(self, row: int) -> bool:
        return self.open_row == row

    def activate(self, row: int, t_act: int, timing: DDR4Timing) -> None:
        self.open_row = row
        self.last_act = t_act
        t = t_act + timing.tRCD
        if t > self.col_ready:
            self.col_ready = t
        # The row must stay open tRAS before it may be precharged.
        t = t_act + timing.tRAS
        if t > self.pre_ready:
            self.pre_ready = t
        t = t_act + timing.tRC
        if t > self.act_ready:
            self.act_ready = t

    def precharge(self, t_pre: int, timing: DDR4Timing) -> None:
        self.open_row = None
        t = t_pre + timing.tRP
        if t > self.act_ready:
            self.act_ready = t

    def column_read(self, t_col: int, timing: DDR4Timing) -> None:
        # Read-to-precharge spacing.
        t = t_col + timing.tRTP
        if t > self.pre_ready:
            self.pre_ready = t

    def column_write(self, t_col: int, timing: DDR4Timing) -> None:
        # Write recovery: data lands tCWL+tBL after the command, then tWR.
        t = t_col + timing.tCWL + timing.tBL + timing.tWR
        if t > self.pre_ready:
            self.pre_ready = t


@dataclass(slots=True)
class RankState:
    """Shared activate-rate limits and refresh schedule for one rank."""

    last_act_times: list[int] = field(default_factory=list)
    last_act: int = -(1 << 30)
    last_act_bg: int = -1
    # Refresh: the next scheduled REF point (multiples of tREFI) and the
    # cycle the in-progress/last REF's tRFC recovery ends.  ``next_ref``
    # stays at the disabled sentinel unless the controller arms it.
    next_ref: int = 1 << 62
    ref_done: int = 0

    def earliest_act(self, bankgroup: int, timing: DDR4Timing) -> int:
        """Earliest cycle an ACT may issue in this rank, per tRRD and tFAW."""
        spacing = timing.tRRD_L if bankgroup == self.last_act_bg else timing.tRRD_S
        t = self.last_act + spacing
        times = self.last_act_times
        if len(times) >= 4:
            faw = times[-4] + timing.tFAW
            if faw > t:
                t = faw
        return t

    def record_act(self, bankgroup: int, t_act: int) -> None:
        self.last_act = t_act
        self.last_act_bg = bankgroup
        self.last_act_times.append(t_act)
        if len(self.last_act_times) > 8:
            del self.last_act_times[:-4]


@dataclass(slots=True)
class ChannelBusState:
    """Column-command / data-bus serialization for one channel."""

    last_col: int = -(1 << 30)
    last_col_bg: int = -1
    data_free: int = 0
    last_was_write: bool = False

    def earliest_col(self, bankgroup: int, is_write: bool,
                     timing: DDR4Timing) -> int:
        """Earliest cycle a RD/WR command may issue on this channel.

        Consecutive column commands to the *same* bank group are spaced by
        tCCD_L; different bank groups only need tCCD_S — the effect the
        Request Generator's bank-group interleaving exploits.
        """
        spacing = (
            timing.tCCD_L if bankgroup == self.last_col_bg else timing.tCCD_S
        )
        t = self.last_col + spacing
        # Bus turnaround between reads and writes.
        if self.last_was_write != is_write:
            turn = self.last_col + timing.tCCD_L
            if turn > t:
                t = turn
        # The data burst must find the data bus free.
        latency = timing.tCWL if is_write else timing.tCL
        free = self.data_free - latency
        if free > t:
            t = free
        return t

    def record_col(self, bankgroup: int, t_col: int, is_write: bool,
                   timing: DDR4Timing) -> None:
        self.last_col = t_col
        self.last_col_bg = bankgroup
        self.last_was_write = is_write
        latency = timing.tCWL if is_write else timing.tCL
        self.data_free = t_col + latency + timing.tBL

"""Streaming JEDEC command-stream auditor.

The controller's whole output is a schedule of ACT/PRE/RD/WR commands; the
paper's headline metrics (row-buffer hit rate, bandwidth utilization, the
Fig. 8-10 speedups) are computed from it, so a schedule that silently
violates a timing constraint produces optimistically wrong results rather
than a crash.  :class:`CommandAuditor` is the model's substitute for a
cycle-accurate simulator's assertion machinery: it attaches to any
:class:`~repro.dram.controller.MemoryController` through the controller's
``command_observers`` hook and checks every constraint the model claims to
honour, online, as commands are emitted:

* per bank — tRCD (ACT to column), tRAS (ACT to PRE), tRP (PRE to ACT),
  tRC (ACT to ACT), tRTP (read to PRE), tWR write recovery (WR data end to
  PRE), plus protocol consistency: no ACT on an open bank, no PRE or
  column command on a closed bank, column row must match the open row;
* per rank — tRRD_S/L activate spacing and the tFAW four-activate window
  (these are *rank*-scoped: banks in different ranks of one channel do not
  constrain each other);
* per channel — tCCD_S/L column spacing with read<->write turnaround, and
  data-bus burst overlap (a burst may not begin before the previous one's
  last beat).

Violations are recorded as structured :class:`Violation` records carrying
both commands and the failed rule, instead of a bare assert; ``strict=True``
raises :class:`TimingViolationError` on the first one.  One auditor can
watch any number of controllers — all state is keyed by full
(channel, rank, bankgroup, bank) coordinates — so a single instance audits
a whole :class:`~repro.dram.system.DRAMSystem`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.config import DDR4Timing

#: Commands whose data burst occupies the channel data bus.
_COLUMN_KINDS = ("RD", "WR")


@dataclass(frozen=True)
class Command:
    """One DRAM command as seen by the auditor."""

    kind: str                            # "ACT" | "PRE" | "RD" | "WR"
    cycle: int
    bank: tuple[int, int, int, int]      # (channel, rank, bankgroup, bank)
    row: int

    @property
    def channel(self) -> int:
        return self.bank[0]

    @property
    def rank(self) -> tuple[int, int]:
        """Rank scope key: tRRD/tFAW never cross channels or ranks."""
        return (self.bank[0], self.bank[1])

    @property
    def bankgroup(self) -> int:
        return self.bank[2]

    def __str__(self) -> str:
        ch, rk, bg, bk = self.bank
        return (f"{self.kind}@{self.cycle} "
                f"ch{ch}/rk{rk}/bg{bg}/bk{bk} row {self.row}")


@dataclass(frozen=True)
class Violation:
    """One failed constraint, with both commands for context."""

    rule: str                 # e.g. "tWR", "tFAW", "row-mismatch"
    command: Command          # the offending command
    prior: Command | None     # the earlier command the constraint is against
    required: int             # minimum legal separation in cycles
    actual: int               # observed separation

    @property
    def slack(self) -> int:
        """How many cycles early the command issued (negative = legal)."""
        return self.required - self.actual

    def __str__(self) -> str:
        msg = f"{self.rule}: {self.command}"
        if self.prior is not None:
            msg += (f" only {self.actual} cycles after {self.prior}"
                    f" (needs {self.required})")
        return msg


class TimingViolationError(AssertionError):
    """Raised by a strict auditor; carries the structured violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class _BankAudit:
    """Per-bank constraint state."""

    open_row: int | None = None
    last_act: int | None = None
    last_pre: int | None = None
    # Column commands since the last ACT: (cycle, kind) pairs, consumed by
    # the tRTP/tWR checks when the bank is next precharged.
    cols: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class _RankAudit:
    """Per-rank activate pacing (tRRD, tFAW) and refresh state."""

    last_act: Command | None = None
    act_window: deque = field(default_factory=lambda: deque(maxlen=4))
    last_ref: Command | None = None
    ref_end: int | None = None      # cycle the last REF's tRFC recovery ends
    window_start: int | None = None  # first cycle seen (pre-first-REF base)


@dataclass
class _ChannelAudit:
    """Per-channel column/data-bus state (tCCD, turnaround, bursts)."""

    last_col: Command | None = None
    data_end: int | None = None   # cycle the previous burst's last beat ends
    history: deque = field(default_factory=lambda: deque(maxlen=8))


class CommandAuditor:
    """Online legality checker for a DRAM command stream.

    Parameters
    ----------
    timing:
        The :class:`DDR4Timing` the stream must satisfy.  When attaching to
        a controller with :meth:`attach`, defaults to that controller's
        timing.
    strict:
        Raise :class:`TimingViolationError` on the first violation instead
        of recording it.
    max_recorded:
        Cap on stored :class:`Violation` records (the count in
        ``violation_count`` is never capped).
    """

    def __init__(self, timing: DDR4Timing | None = None, *,
                 strict: bool = False, max_recorded: int = 256,
                 refresh: bool = True) -> None:
        self.timing = timing or DDR4Timing()
        self._timing_explicit = timing is not None
        self.strict = strict
        self.max_recorded = max_recorded
        #: When True, enforce the refresh rules: REF needs all banks of its
        #: rank precharged (tRP after the closing PREs), ACTs must clear the
        #: tRFC recovery, and no rank may go 9 x tREFI without a REF (the
        #: JEDEC maximum-postponement window).  Disable when auditing a
        #: stream from a model with refresh off.
        self.refresh = refresh
        self.violations: list[Violation] = []
        self.violation_count = 0
        self.commands_seen = 0
        self._banks: dict[tuple, _BankAudit] = {}
        self._ranks: dict[tuple, _RankAudit] = {}
        self._channels: dict[int, _ChannelAudit] = {}

    # ------------------------------------------------------------- wiring

    def attach(self, controller) -> "CommandAuditor":
        """Subscribe to a controller's command stream; returns ``self``."""
        if not self._timing_explicit:
            self.timing = controller.timing
            self._timing_explicit = True
        controller.command_observers.append(self.observe)
        return self

    def check_log(self, log) -> "CommandAuditor":
        """Replay a recorded ``command_log`` through the auditor."""
        for kind, cycle, bank, row in log:
            self.observe(kind, cycle, bank, row)
        return self

    # ------------------------------------------------------------- checks

    def observe(self, kind: str, cycle: int, bank: tuple, row: int) -> None:
        """Observer-hook entry point: audit one command."""
        cmd = Command(kind, cycle, tuple(bank), row)
        self.commands_seen += 1
        if self.refresh:
            self._check_refresh_window(cmd)
        if kind == "ACT":
            self._check_act(cmd)
        elif kind == "PRE":
            self._check_pre(cmd)
        elif kind in _COLUMN_KINDS:
            self._check_col(cmd)
        elif kind == "REF":
            self._check_ref(cmd)
        else:
            self._fail("unknown-command", cmd, None, 0, 0)
        self._channel(cmd.channel).history.append(cmd)

    __call__ = observe

    def _bank(self, key: tuple) -> _BankAudit:
        state = self._banks.get(key)
        if state is None:
            state = self._banks[key] = _BankAudit()
        return state

    def _rank(self, key: tuple) -> _RankAudit:
        state = self._ranks.get(key)
        if state is None:
            state = self._ranks[key] = _RankAudit()
        return state

    def _channel(self, key: int) -> _ChannelAudit:
        state = self._channels.get(key)
        if state is None:
            state = self._channels[key] = _ChannelAudit()
        return state

    def _check_act(self, cmd: Command) -> None:
        T = self.timing
        bank = self._bank(cmd.bank)
        if bank.open_row is not None:
            self._fail("act-on-open-bank", cmd, None, 0, 0)
        if bank.last_act is not None:
            self._require("tRC", cmd, bank.last_act, T.tRC, cmd.bank)
        if bank.last_pre is not None:
            self._require("tRP", cmd, bank.last_pre, T.tRP, cmd.bank)
        rank = self._rank(cmd.rank)
        if rank.last_act is not None:
            same_bg = rank.last_act.bankgroup == cmd.bankgroup
            need = T.tRRD_L if same_bg else T.tRRD_S
            self._require("tRRD_L" if same_bg else "tRRD_S",
                          cmd, rank.last_act.cycle, need,
                          prior=rank.last_act)
        if len(rank.act_window) == 4:
            self._require("tFAW", cmd, rank.act_window[0], T.tFAW,
                          cmd.bank)
        if rank.last_ref is not None:
            self._require("tRFC", cmd, rank.last_ref.cycle, T.tRFC,
                          prior=rank.last_ref)
        bank.open_row = cmd.row
        bank.last_act = cmd.cycle
        bank.cols = []
        rank.last_act = cmd
        rank.act_window.append(cmd.cycle)

    def _check_refresh_window(self, cmd: Command) -> None:
        """No rank may run longer than 9 x tREFI without a REF.

        DDR4 permits postponing up to eight REF commands, so the maximum
        legal REF-to-REF (or stream-start-to-first-REF) gap is nine refresh
        intervals.  The base is the rank's last REF, or the first command
        the auditor saw on the rank before any REF.
        """
        rank = self._rank(cmd.rank)
        if rank.window_start is None:
            rank.window_start = cmd.cycle
            return
        base_cmd = rank.last_ref
        base = base_cmd.cycle if base_cmd is not None else rank.window_start
        limit = 9 * self.timing.tREFI
        if cmd.cycle - base > limit:
            self._fail("tREFI-window", cmd, base_cmd, limit,
                       cmd.cycle - base)
            # Re-arm from here so one missing REF is one violation, not one
            # per subsequent command.
            rank.window_start = cmd.cycle
            rank.last_ref = None

    def _check_ref(self, cmd: Command) -> None:
        """All-bank REF: rank fully precharged (tRP honoured) and clear of
        the previous REF's tRFC recovery."""
        T = self.timing
        rank = self._rank(cmd.rank)
        if rank.ref_end is not None:
            self._require("tRFC", cmd, rank.last_ref.cycle, T.tRFC,
                          prior=rank.last_ref)
        for key, bank in self._banks.items():
            if (key[0], key[1]) != cmd.rank:
                continue
            if bank.open_row is not None:
                self._fail("ref-on-open-bank", cmd, None, 0, 0)
            if bank.last_pre is not None:
                self._require("tRP", cmd, bank.last_pre, T.tRP, key)
        rank.last_ref = cmd
        rank.ref_end = cmd.cycle + T.tRFC

    def _check_pre(self, cmd: Command) -> None:
        T = self.timing
        bank = self._bank(cmd.bank)
        if bank.open_row is None:
            # The model only precharges to close an open row; a PRE to an
            # idle bank means controller state and schedule disagree.
            self._fail("pre-on-closed-bank", cmd, None, 0, 0)
        if bank.last_act is not None:
            self._require("tRAS", cmd, bank.last_act, T.tRAS, cmd.bank)
        for col_cycle, col_kind in bank.cols:
            if col_kind == "RD":
                self._require("tRTP", cmd, col_cycle, T.tRTP, cmd.bank)
            else:
                self._require("tWR", cmd, col_cycle,
                              T.tCWL + T.tBL + T.tWR, cmd.bank)
        bank.open_row = None
        bank.last_pre = cmd.cycle
        bank.cols = []

    def _check_col(self, cmd: Command) -> None:
        T = self.timing
        bank = self._bank(cmd.bank)
        if bank.open_row is None:
            self._fail("col-on-closed-bank", cmd, None, 0, 0)
        elif bank.open_row != cmd.row:
            self._fail("row-mismatch", cmd, None, bank.open_row, cmd.row)
        if bank.last_act is not None:
            self._require("tRCD", cmd, bank.last_act, T.tRCD, cmd.bank)
        chan = self._channel(cmd.channel)
        if chan.last_col is not None:
            same_bg = chan.last_col.bankgroup == cmd.bankgroup
            need = T.tCCD_L if same_bg else T.tCCD_S
            rule = "tCCD_L" if same_bg else "tCCD_S"
            if chan.last_col.kind != cmd.kind:
                # Read<->write turnaround: the model spaces direction
                # switches by tCCD_L regardless of bank group.
                need = max(need, T.tCCD_L)
                rule = "turnaround"
            self._require(rule, cmd, chan.last_col.cycle, need,
                          prior=chan.last_col)
        latency = T.tCWL if cmd.kind == "WR" else T.tCL
        burst_start = cmd.cycle + latency
        if chan.data_end is not None and burst_start < chan.data_end:
            self._fail("data-bus-overlap", cmd, chan.last_col,
                       chan.data_end, burst_start)
        chan.data_end = burst_start + T.tBL
        chan.last_col = cmd
        bank.cols.append((cmd.cycle, cmd.kind))

    def _require(self, rule: str, cmd: Command, since: int, need: int,
                 bank: tuple | None = None,
                 prior: Command | None = None) -> None:
        gap = cmd.cycle - since
        if gap < need:
            if prior is None and bank is not None:
                prior = self._last_in_history(cmd.channel, since, bank)
            self._fail(rule, cmd, prior, need, gap)

    def _last_in_history(self, channel: int, cycle: int,
                         bank: tuple) -> Command | None:
        for cmd in reversed(self._channel(channel).history):
            if cmd.cycle == cycle and cmd.bank == bank:
                return cmd
        return None

    def _fail(self, rule: str, cmd: Command, prior: Command | None,
              required: int, actual: int) -> None:
        violation = Violation(rule, cmd, prior, required, actual)
        if self.strict:
            raise TimingViolationError(violation)
        self.violation_count += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(violation)

    # ------------------------------------------------------------- results

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def assert_clean(self) -> None:
        """Fail loudly (with context) if any violation was recorded."""
        if not self.ok:
            raise TimingViolationError(self.violations[0])

    def report(self, limit: int = 20) -> str:
        """Human-readable summary of the audit."""
        lines = [f"audited {self.commands_seen} commands: "
                 f"{self.violation_count} violation(s)"]
        for v in self.violations[:limit]:
            lines.append(f"  {v}")
        if self.violation_count > limit:
            lines.append(f"  ... and {self.violation_count - limit} more")
        return "\n".join(lines)


def audit_log(log, timing: DDR4Timing | None = None,
              strict: bool = False) -> list[Violation]:
    """Check a recorded command log; returns the violations found."""
    auditor = CommandAuditor(timing, strict=strict)
    auditor.check_log(log)
    return auditor.violations

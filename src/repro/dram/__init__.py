"""DDR4 DRAM substrate: address mapping, bank timing, FR-FCFS controllers."""

from repro.dram.address import DEFAULT_ORDER, AddressMapper
from repro.dram.audit import (CommandAuditor, TimingViolationError,
                              Violation, audit_log)
from repro.dram.bank import BankState, ChannelBusState, RankState
from repro.dram.controller import MemoryController
from repro.dram.scheduler import FCFS, FRFCFS, make_scheduler
from repro.dram.system import DRAMSystem

__all__ = [
    "DEFAULT_ORDER",
    "AddressMapper",
    "BankState",
    "ChannelBusState",
    "CommandAuditor",
    "FCFS",
    "FRFCFS",
    "DRAMSystem",
    "MemoryController",
    "RankState",
    "TimingViolationError",
    "Violation",
    "audit_log",
    "make_scheduler",
]

"""The far-memory link front-end (CXL/RDMA-style expander port).

One :class:`RemoteLink` instance models the serial link between the
processor die and a far memory pool.  It is shared by every channel of a
:class:`~repro.dram.system.DRAMSystem` (one physical port) and by both
DRAM engines — the scalar oracle and the batched engine hold a reference
to the *same* object and call it at the same two points, which is what
keeps them bitwise identical with the link enabled:

* **inject** — at system enqueue, a far request's arrival is shifted by
  the outbound traversal: wait for the request channel (reads send a
  header, writes serialize the 64B payload), then one-way propagation.
  Enqueue order is engine-independent, so the outbound cursor advances
  identically under either engine.
* **deliver** — where each engine assigns ``req.finish``, a far request's
  completion is shifted by the return traversal: wait for the data
  channel, respect the ``queue_depth`` read-return ring (at most Q line
  transfers in flight), serialize the payload, then propagate back.
  Both engines service requests in the same order (the differential
  guarantee), so the shared return cursor and ring evolve identically.

The far pool's media reuses the local DRAM timing model — the link is
purely additive latency/bandwidth/queueing.  What is *not* modeled:
coherence traffic, link-layer retry, asymmetric read/write lanes, and
far-side controller contention separate from the local one (the Tiara
and CXL-index papers' regime is captured by latency + bandwidth + queue
depth alone).  See ``docs/MODEL.md`` section "Far-memory tier" for the
full framing.
"""

from __future__ import annotations

from repro.common.config import CPU_GHZ, RemoteLinkConfig
from repro.common.stats import Stats

#: Multiplicative hash (Knuth) for the deterministic line-interleave
#: placement; any fixed odd constant works, this one mixes low bits well.
_HASH_MULT = 2654435761
_HASH_MOD = 1 << 32


class RemoteLink:
    """Latency/bandwidth/queue-depth model of one far-memory link."""

    __slots__ = (
        "config", "latency", "data_cycles", "queue_depth", "congestion",
        "_placement", "_far_base", "_threshold", "_line_bytes",
        "_out_free", "_ret_free", "_ring", "_count", "stats", "obs",
    )

    def __init__(self, config: RemoteLinkConfig, line_bytes: int) -> None:
        if config.placement not in ("all", "range", "hash"):
            raise ValueError(
                f"unknown far-memory placement {config.placement!r} "
                f"(want all, range, or hash)")
        if config.latency < 0:
            raise ValueError(f"link latency must be >= 0, got "
                             f"{config.latency}")
        if config.gbps <= 0:
            raise ValueError(f"link bandwidth must be positive, got "
                             f"{config.gbps}")
        if config.queue_depth < 1:
            raise ValueError(f"link queue depth must be >= 1, got "
                             f"{config.queue_depth}")
        self.config = config
        self.latency = int(config.latency)
        # Cycles one 64B payload occupies the serial link: bytes per CPU
        # cycle at `gbps` GB/s is gbps / CPU_GHZ, so ceil(line / that).
        self.data_cycles = max(
            1, -(-int(line_bytes * CPU_GHZ * 1000)
                 // int(config.gbps * 1000)))
        self.queue_depth = int(config.queue_depth)
        self.congestion = bool(config.congestion)
        self._placement = config.placement
        self._far_base = int(config.far_base)
        fraction = min(1.0, max(0.0, config.far_fraction))
        self._threshold = int(fraction * _HASH_MOD)
        self._line_bytes = int(line_bytes)
        # Link state: next-free cycle of each direction's serial channel,
        # plus a ring of the last `queue_depth` return-delivery completion
        # cycles (the read-return buffer bound).
        self._out_free = 0
        self._ret_free = 0
        self._ring = [0] * self.queue_depth
        self._count = 0
        self.stats = Stats()
        #: Observability bus (``EventBus``), attached after construction;
        #: publishing never alters link state or timing.
        self.obs = None

    # ------------------------------------------------------------ placement

    def is_far(self, addr: int) -> bool:
        """Whether ``addr`` lives in the far pool (deterministic)."""
        placement = self._placement
        if placement == "all":
            return True
        if placement == "range":
            return addr >= self._far_base
        return ((addr >> 6) * _HASH_MULT) % _HASH_MOD < self._threshold

    # ------------------------------------------------------------- traversal

    def inject(self, arrival: int, is_write: bool) -> int:
        """Outbound traversal: returns the request's arrival at the far
        pool.  Reads send a header (1 cycle on the link); writes serialize
        their 64B payload.  Called once per far request, at enqueue."""
        busy = self.data_cycles if is_write else 1
        depart = arrival if arrival > self._out_free else self._out_free
        self._out_free = depart + busy
        counters = self.stats.counters
        counters["far_writes" if is_write else "far_reads"] += 1
        counters["far_bytes"] += self._line_bytes
        counters["link_out_wait"] += depart - arrival
        return depart + self.latency

    def deliver(self, finish: int, is_write: bool) -> int:
        """Return traversal: the cycle the response lands at the requester.

        ``finish`` is the far-side DRAM completion.  The grant waits for
        the return channel, for the ring slot ``queue_depth`` transfers
        back (the read-return buffer bound), and — with the congestion
        model on — an occupancy-proportional queueing term.  Reads
        serialize the 64B payload; writes return a header-sized ack.
        Called once per far request, at the engines' finish assignment.
        """
        t = finish
        if self._ret_free > t:
            t = self._ret_free
        slot = self._count % self.queue_depth
        prev = self._ring[slot]
        if prev > t:
            t = prev
        if self.congestion:
            # Each grant pays extra for standing occupancy: the number of
            # return transfers still in flight, scaled by the payload time.
            inflight = 0
            for done in self._ring:
                if done > t:
                    inflight += 1
            t += (inflight * self.data_cycles) // self.queue_depth
        busy = 1 if is_write else self.data_cycles
        self._ret_free = t + busy
        delivered = t + busy + self.latency
        self._ring[slot] = delivered
        self._count += 1
        counters = self.stats.counters
        counters["far_serviced"] += 1
        counters["link_ret_wait"] += t - finish
        obs = self.obs
        if obs is not None:
            # Occupancy snapshot (pure read — timing is already fixed).
            inflight = 0
            for done in self._ring:
                if done > t:
                    inflight += 1
            obs.link_transfer(delivered, inflight, t - finish)
        return delivered

    # --------------------------------------------------------------- metrics

    @property
    def transfers(self) -> int:
        """Total far requests delivered back so far."""
        return self._count

    def mean_return_wait(self) -> float:
        """Mean return-path queueing delay per delivered far request."""
        if self._count == 0:
            return 0.0
        return self.stats.get("link_ret_wait") / self._count

"""The batched array-kernel channel engine (the production controller).

:class:`BatchedController` is a drop-in replacement for
:class:`~repro.dram.controller.MemoryController` that trades the scalar
engine's per-request object dispatch for structure-of-arrays state:

* **SoA request buffer** — a request's arrival / direction / row / dense
  bank id live in parallel lists indexed by a monotone request id (rid);
  the scheduler's heaps hold bare ``(arrival, rid)`` int pairs instead of
  entry objects, with liveness in one ``bytearray`` (lazy deletion and
  wholesale compaction exactly as in :class:`~repro.dram.scheduler.FRFCFS`).
* **Dense bank state** — per-channel banks are numbered
  ``(rank * bankgroups + bankgroup) * banks_per_group + bank`` and kept in
  one flat list, killing the per-access dict hashing of flat-bank tuples.
* **Pre-decoded enqueue** — callers that decoded a whole tile through
  :meth:`~repro.dram.address.AddressMapper.map_arrays` hand coordinates in
  as ints (:meth:`enqueue_decoded`); nothing on the service path touches a
  ``DRAMCoord``.
* **Flat service kernel** — refill, FR-FCFS take, and command timing run in
  one frame with the JEDEC constants hoisted to locals; bank/bus math is
  inlined from :mod:`repro.dram.bank`.

The engine is *bitwise equivalent* to the scalar oracle: identical pick
order (``(arrival, rid)`` reproduces the oracle's ``(arrival, seq)`` — rids
are assigned in enqueue order and refill is FIFO), identical command
streams (including refresh, which walks banks in dense order on both
sides), and identical statistics accumulated in the same order with the
same float operations.  ``tests/dram/test_engine_differential.py`` holds
the differential suite; select the oracle with ``DRAMConfig.engine =
"scalar"``.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush

from repro.common.config import DRAMConfig
from repro.common.stats import Stats
from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import BankState, ChannelBusState, RankState

#: FR-FCFS starvation bound, matching :class:`repro.dram.scheduler.FRFCFS`.
AGE_CAP = 2000

#: Reclaim SoA storage once the retired tail exceeds this many slots (only
#: at quiescent points, where no rid can still be referenced).
_RESET_THRESHOLD = 1 << 16


class _SchedulerHandle:
    """Stand-in scheduler object for the batched engine's compat surface.

    The engine schedules inline, but the observability layer attaches a
    starvation probe via ``controller.scheduler.obs`` (see
    :meth:`repro.obs.events.EventBus.attach`) — this is that attach point.
    """

    __slots__ = ("obs", "age_cap")

    def __init__(self, age_cap: int = AGE_CAP) -> None:
        self.obs = None
        self.age_cap = age_cap


class _BufferView:
    """Sized view of the request buffer (``len(ctrl.buffer)`` compat)."""

    __slots__ = ("_ctrl",)

    def __init__(self, ctrl: "BatchedController") -> None:
        self._ctrl = ctrl

    def __len__(self) -> int:
        return self._ctrl._buffered

    def __bool__(self) -> bool:
        return self._ctrl._buffered > 0


class BatchedController:
    """Batched timing model of a single DDR4 channel.

    External surface (time, stats, observers, ``banks``, ``buffer``,
    enqueue/service/drain) mirrors :class:`MemoryController`; see the
    module docstring for what differs inside.
    """

    def __init__(self, channel: int, config: DRAMConfig,
                 mapper: AddressMapper, scheduler=None,
                 command_log_limit: int | None = None) -> None:
        if config.scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(
                f"batched engine supports frfcfs/fcfs, not "
                f"{config.scheduler!r} (use engine='scalar')"
            )
        if scheduler is not None:
            raise ValueError("batched engine schedules inline; "
                             "use engine='scalar' for custom schedulers")
        self.channel = channel
        self.config = config
        self.timing = config.timing
        self.mapper = mapper
        self.scheduler = _SchedulerHandle()
        self._fcfs = config.scheduler == "fcfs"
        self._closed_page = config.page_policy == "closed"

        # Dense bank/rank state.  bank_id = (rank*BG + bg)*BPG + bank.
        self._bankgroups = config.bankgroups
        self._banks_per_group = config.banks_per_group
        self._banks_per_rank = config.bankgroups * config.banks_per_group
        n_banks = config.ranks * self._banks_per_rank
        self._bank_list = [BankState() for _ in range(n_banks)]
        self._rank_list = [RankState() for _ in range(config.ranks)]
        self._fb: list[tuple[int, int, int, int]] = []
        self.banks: dict[tuple, BankState] = {}
        for bid in range(n_banks):
            rank, rem = divmod(bid, self._banks_per_rank)
            bg, bank = divmod(rem, self._banks_per_group)
            fb = (channel, rank, bg, bank)
            self._fb.append(fb)
            self.banks[fb] = self._bank_list[bid]
        self.ranks: dict[int, RankState] = dict(enumerate(self._rank_list))
        if config.refresh:
            for rank_state in self._rank_list:
                rank_state.next_ref = self.timing.tREFI
            self._next_ref = self.timing.tREFI
        else:
            self._next_ref = 1 << 62
        self.bus = ChannelBusState()

        # SoA request storage, indexed by rid (monotone per enqueue).
        self._arr: list[int] = []       # arrival cycle
        self._w: list[bool] = []        # is_write
        self._row: list[int] = []
        self._bg: list[int] = []
        self._bid: list[int] = []       # dense bank id
        self._req: list = []            # DRAMRequest (cleared on retire)
        self._alive = bytearray()
        self.input_queue: deque[int] = deque()
        self._buffered = 0
        self._dead = 0

        # Inline FR-FCFS index over (arrival, rid) pairs.
        self._any: list[tuple[int, int]] = []
        # bank_id -> row -> (read_heap, write_heap)
        self._groups: dict[int, dict[int, tuple[list, list]]] = {}
        self._hot: dict[int, tuple[list, list]] = {}

        self.buffer = _BufferView(self)
        self.time = 0
        self.stats = Stats()
        self._last_occ_time = 0
        self._buffer_cap = config.request_buffer
        self._line_bytes = config.line_bytes
        # JEDEC constants as plain instance ints, hoisted to locals by the
        # service kernel (the frozen-dataclass reads added up).
        t = self.timing
        self._tRP = t.tRP
        self._tRCD = t.tRCD
        self._tRAS = t.tRAS
        self._tRC = t.tRC
        self._tRTP = t.tRTP
        self._tWR = t.tWR
        self._tCL = t.tCL
        self._tCWL = t.tCWL
        self._tBL = t.tBL
        self._tCCD_S = t.tCCD_S
        self._tCCD_L = t.tCCD_L
        self._tRRD_S = t.tRRD_S
        self._tRRD_L = t.tRRD_L
        self._tFAW = t.tFAW
        self.command_observers: list = []
        self.command_log: list[tuple] = []
        self.command_log_limit = command_log_limit
        # Far-memory link (:class:`repro.dram.remote.RemoteLink`), shared
        # across channels; assigned by :class:`~repro.dram.system.DRAMSystem`
        # when the remote tier is enabled.  None = all addresses are local.
        self.remote = None

    # ------------------------------------------------------------- observers

    @property
    def record_commands(self) -> bool:
        """Whether commands are appended to ``command_log`` (legacy API)."""
        return self._record_command in self.command_observers

    @record_commands.setter
    def record_commands(self, value: bool) -> None:
        recording = self.record_commands
        if value and not recording:
            self.command_observers.append(self._record_command)
        elif not value and recording:
            self.command_observers.remove(self._record_command)

    def _record_command(self, kind: str, cycle: int, bank: tuple,
                        row: int) -> None:
        limit = self.command_log_limit
        if limit is not None and len(self.command_log) >= limit:
            self.stats.add("command_log_dropped")
            return
        self.command_log.append((kind, cycle, bank, row))

    # ------------------------------------------------------------- producers

    def enqueue(self, req: DRAMRequest) -> None:
        """Accept a request; decode via the (memoized) scalar map."""
        coord = self.mapper.map(req.addr)
        self.enqueue_coord(req, coord)

    def enqueue_coord(self, req: DRAMRequest, coord: DRAMCoord) -> None:
        if coord.channel != self.channel:
            raise ValueError(
                f"request for channel {coord.channel} routed to {self.channel}"
            )
        self._push(req, coord.rank, coord.bankgroup, coord.bank, coord.row)

    def enqueue_decoded(self, req: DRAMRequest, rank: int, bankgroup: int,
                        bank: int, row: int) -> None:
        """Accept a request with pre-decoded coordinates (batch decode)."""
        self._push(req, rank, bankgroup, bank, row)

    def _push(self, req: DRAMRequest, rank: int, bankgroup: int, bank: int,
              row: int) -> None:
        if (not self._buffered and not self.input_queue
                and len(self._arr) > _RESET_THRESHOLD):
            self._reset_storage()
        self._arr.append(req.arrival)
        self._w.append(req.is_write)
        self._row.append(row)
        self._bg.append(bankgroup)
        self._bid.append((rank * self._bankgroups + bankgroup)
                         * self._banks_per_group + bank)
        self._req.append(req)
        self._alive.append(0)
        self.input_queue.append(len(self._arr) - 1)
        counters = self.stats.counters
        counters["requests"] += 1
        counters["writes" if req.is_write else "reads"] += 1

    def _reset_storage(self) -> None:
        """Reclaim SoA slots at a quiescent point (nothing in flight).

        Rid relative order is preserved for all future requests, so the
        ``(arrival, rid)`` tie-break stays equivalent to the oracle's
        monotone ``seq`` (ties are only ever compared among co-buffered
        requests).
        """
        del self._arr[:]
        del self._w[:]
        del self._row[:]
        del self._bg[:]
        del self._bid[:]
        del self._req[:]
        self._alive = bytearray()
        self._any = []
        self._groups = {}
        self._hot = {}
        self._dead = 0

    @property
    def pending(self) -> int:
        return self._buffered + len(self.input_queue)

    def next_event(self) -> int | None:
        """Earliest cycle this channel has schedulable work, or None."""
        if self._buffered:
            return self.time
        if self.input_queue:
            arrival = self._arr[self.input_queue[0]]
            return arrival if arrival > self.time else self.time
        return None

    # ------------------------------------------------------------- scheduling

    def _refill(self, now: int) -> None:
        """Move arrived requests into the scheduling window, oldest first."""
        queue = self.input_queue
        arr = self._arr
        cap = self._buffer_cap
        buffered = self._buffered
        any_heap = self._any
        alive = self._alive
        if self._fcfs:
            while queue and buffered < cap and arr[queue[0]] <= now:
                rid = queue.popleft()
                alive[rid] = 1
                heappush(any_heap, (arr[rid], rid))
                buffered += 1
            self._buffered = buffered
            return
        groups = self._groups
        hot = self._hot
        rows = self._row
        bids = self._bid
        writes = self._w
        bank_list = self._bank_list
        while queue and buffered < cap and arr[queue[0]] <= now:
            rid = queue.popleft()
            alive[rid] = 1
            node = (arr[rid], rid)
            heappush(any_heap, node)
            buffered += 1
            bid = bids[rid]
            row = rows[rid]
            rows_map = groups.get(bid)
            if rows_map is None:
                rows_map = groups[bid] = {}
            pair = rows_map.get(row)
            if pair is None:
                pair = rows_map[row] = ([], [])
            heappush(pair[1] if writes[rid] else pair[0], node)
            if bank_list[bid].open_row == row:
                hot[bid] = pair
        self._buffered = buffered

    def _note_occupancy(self, now: int) -> None:
        dt = now - self._last_occ_time
        if dt > 0:
            self.stats.observe("occupancy", self._buffered, dt)
            self._last_occ_time = now

    def _take(self, now: int) -> int:
        """Pick and remove the next rid (inline FR-FCFS / FCFS)."""
        any_heap = self._any
        alive = self._alive
        if self._fcfs:
            rid = heappop(any_heap)[1]
            alive[rid] = 0
            self._buffered -= 1
            return rid
        while not alive[any_heap[0][1]]:
            heappop(any_heap)
            self._dead -= 1
        oldest = any_heap[0]
        if now - oldest[0] > AGE_CAP:
            rid = oldest[1]
            obs = self.scheduler.obs
            if obs is not None:
                obs.starvation(now)
        else:
            best_dir = best_hit = None
            hot = self._hot
            stale = None
            last_was_write = self.bus.last_was_write
            dead = 0
            for hot_bid, pair in hot.items():
                read_heap, write_heap = pair
                while read_heap and not alive[read_heap[0][1]]:
                    heappop(read_heap)
                    dead += 1
                while write_heap and not alive[write_heap[0][1]]:
                    heappop(write_heap)
                    dead += 1
                if read_heap:
                    head = read_heap[0]
                    if best_hit is None or head < best_hit:
                        best_hit = head
                    if not last_was_write and (
                            best_dir is None or head < best_dir):
                        best_dir = head
                if write_heap:
                    head = write_heap[0]
                    if best_hit is None or head < best_hit:
                        best_hit = head
                    if last_was_write and (
                            best_dir is None or head < best_dir):
                        best_dir = head
                elif not read_heap:
                    stale = [hot_bid] if stale is None else stale + [hot_bid]
            if dead:
                self._dead -= dead
            if stale is not None:
                for hot_bid in stale:
                    del hot[hot_bid]
            if best_dir is not None:
                rid = best_dir[1]
            elif best_hit is not None:
                rid = best_hit[1]
            else:
                rid = oldest[1]
        alive[rid] = 0
        self._buffered -= 1
        self._dead += 1
        if self._dead > 64 and self._dead > 2 * self._buffered:
            self._compact()
        return rid

    def _compact(self) -> None:
        """Drop dead nodes from every heap and rebuild the hot set."""
        alive = self._alive
        self._any = [node for node in self._any if alive[node[1]]]
        heapify(self._any)
        groups = self._groups
        for rows_map in groups.values():
            for row in list(rows_map):
                read_heap, write_heap = rows_map[row]
                read_heap[:] = [n for n in read_heap if alive[n[1]]]
                write_heap[:] = [n for n in write_heap if alive[n[1]]]
                if read_heap:
                    heapify(read_heap)
                if write_heap:
                    heapify(write_heap)
                if not read_heap and not write_heap:
                    del rows_map[row]
        self._hot = {}
        bank_list = self._bank_list
        for bid, rows_map in groups.items():
            open_row = bank_list[bid].open_row
            if open_row is not None:
                pair = rows_map.get(open_row)
                if pair is not None and (pair[0] or pair[1]):
                    self._hot[bid] = pair
        self._dead = 0

    # ------------------------------------------------------------- refresh

    def _refresh_catch_up(self, now: int) -> None:
        """Issue every REF whose tREFI point has passed (dense bank walk).

        Mirrors the scalar engine's refresh semantics exactly: close open
        rows at ``max(pre_ready, due)``, REF at the latest of the due
        point, the previous REF's recovery, and every bank's ``act_ready``;
        the schedule stays pinned to multiples of tREFI.
        """
        timing = self.timing
        observers = self.command_observers
        counters = self.stats.counters
        hot = self._hot
        bank_list = self._bank_list
        banks_per_rank = self._banks_per_rank
        for rank_id, rank in enumerate(self._rank_list):
            while rank.next_ref <= now:
                due = rank.next_ref
                t_ref = due if due > rank.ref_done else rank.ref_done
                base = rank_id * banks_per_rank
                for bid in range(base, base + banks_per_rank):
                    bank = bank_list[bid]
                    if bank.open_row is not None:
                        t_pre = bank.pre_ready
                        if due > t_pre:
                            t_pre = due
                        row = bank.open_row
                        bank.precharge(t_pre, timing)
                        hot.pop(bid, None)
                        if observers:
                            fb = self._fb[bid]
                            for obs in observers:
                                obs("PRE", t_pre, fb, row)
                        counters["refresh_row_closes"] += 1
                    if bank.act_ready > t_ref:
                        t_ref = bank.act_ready
                if observers:
                    fb = (self.channel, rank_id, 0, 0)
                    for obs in observers:
                        obs("REF", t_ref, fb, -1)
                counters["refreshes"] += 1
                rank.ref_done = t_ref + timing.tRFC
                rank.next_ref = due + timing.tREFI
        self._next_ref = min(r.next_ref for r in self._rank_list)

    # ------------------------------------------------------------- service

    def service_one(self) -> DRAMRequest | None:
        """Schedule and complete one request; returns it, or None if idle.

        One flat kernel: refill, pick, and the full ACT/PRE/column timing
        advance run in this frame with the JEDEC constants in locals.
        """
        arr = self._arr
        queue = self.input_queue
        now = self.time
        if queue and self._buffered < self._buffer_cap and arr[queue[0]] <= now:
            self._refill(now)
        if not self._buffered:
            if not queue:
                return None
            # Idle gap: skip ahead to the next arrival.
            self._note_occupancy(now)
            arrival = arr[queue[0]]
            if arrival > now:
                now = arrival
            self.time = now
            self._last_occ_time = now
            self._refill(now)
        rid = self._take(now)

        # ------------------------------------------------- execute (inline)
        stats = self.stats
        counters = stats.counters
        observers = self.command_observers
        arrival = arr[rid]
        earliest = now if now > arrival else arrival
        if earliest >= self._next_ref:
            # Refresh points have passed: catch up before the row-state
            # check — a REF closes every open row in its rank.
            self._refresh_catch_up(earliest)
        bid = self._bid[rid]
        row = self._row[rid]
        bg = self._bg[rid]
        is_write = self._w[rid]
        req = self._req[rid]
        bank = self._bank_list[bid]

        if bank.open_row == row:
            counters["row_hits"] += 1
            req.row_hit = True
            t_col_min = bank.col_ready
            if earliest > t_col_min:
                t_col_min = earliest
        else:
            rank = self._rank_list[bid // self._banks_per_rank]
            if bank.open_row is not None:
                counters["row_conflicts"] += 1
                t_pre = bank.pre_ready
                if earliest > t_pre:
                    t_pre = earliest
                old_row = bank.open_row
                bank.open_row = None
                t = t_pre + self._tRP
                if t > bank.act_ready:
                    bank.act_ready = t
                self._hot.pop(bid, None)
                if observers:
                    fb = self._fb[bid]
                    for obs in observers:
                        obs("PRE", t_pre, fb, old_row)
            else:
                counters["row_empty"] += 1
            t_act = bank.act_ready
            if earliest > t_act:
                t_act = earliest
            # Inline RankState.earliest_act: tRRD spacing plus the tFAW
            # four-activate window.
            spacing = (self._tRRD_L if bg == rank.last_act_bg
                       else self._tRRD_S)
            rank_ready = rank.last_act + spacing
            times = rank.last_act_times
            if len(times) >= 4:
                faw = times[-4] + self._tFAW
                if faw > rank_ready:
                    rank_ready = faw
            if rank_ready > t_act:
                t_act = rank_ready
            if rank.ref_done > t_act:
                t_act = rank.ref_done
            # Inline BankState.activate.
            bank.open_row = row
            bank.last_act = t_act
            t = t_act + self._tRCD
            if t > bank.col_ready:
                bank.col_ready = t
            t = t_act + self._tRAS
            if t > bank.pre_ready:
                bank.pre_ready = t
            t = t_act + self._tRC
            if t > bank.act_ready:
                bank.act_ready = t
            # Inline RankState.record_act.
            rank.last_act = t_act
            rank.last_act_bg = bg
            times.append(t_act)
            if len(times) > 8:
                del times[:-4]
            if not self._fcfs:
                rows_map = self._groups.get(bid)
                pair = rows_map.get(row) if rows_map is not None else None
                if pair is not None and (pair[0] or pair[1]):
                    self._hot[bid] = pair
                else:
                    self._hot.pop(bid, None)
            if observers:
                fb = self._fb[bid]
                for obs in observers:
                    obs("ACT", t_act, fb, row)
            t_col_min = bank.col_ready

        # Inline ChannelBusState.earliest_col / record_col.
        bus = self.bus
        spacing = self._tCCD_L if bg == bus.last_col_bg else self._tCCD_S
        t_col = bus.last_col + spacing
        if bus.last_was_write != is_write:
            turn = bus.last_col + self._tCCD_L
            if turn > t_col:
                t_col = turn
        latency = self._tCWL if is_write else self._tCL
        free = bus.data_free - latency
        if free > t_col:
            t_col = free
        if t_col_min > t_col:
            t_col = t_col_min
        bus.last_col = t_col
        bus.last_col_bg = bg
        bus.last_was_write = is_write
        bus.data_free = t_col + latency + self._tBL
        if observers:
            fb = self._fb[bid]
            kind = "WR" if is_write else "RD"
            for obs in observers:
                obs(kind, t_col, fb, row)
        if is_write:
            t = t_col + self._tCWL + self._tBL + self._tWR
            if t > bank.pre_ready:
                bank.pre_ready = t
            req.finish = t_col + self._tCWL + self._tBL
        else:
            t = t_col + self._tRTP
            if t > bank.pre_ready:
                bank.pre_ready = t
            req.finish = t_col + self._tCL + self._tBL
        req.start = t_col
        if req.far:
            # Far-memory tier: route the completion through the shared
            # link's return path (same call site in both engines, so the
            # link state evolves identically — the bitwise guarantee).
            remote = self.remote
            if remote is not None:
                req.finish = remote.deliver(req.finish, is_write)
        if self._closed_page:
            # Auto-precharge (RDA/WRA): close the row as soon as legal.
            t_pre = bank.pre_ready
            bank.open_row = None
            t = t_pre + self._tRP
            if t > bank.act_ready:
                bank.act_ready = t
            self._hot.pop(bid, None)
            if observers:
                fb = self._fb[bid]
                for obs in observers:
                    obs("PRE", t_pre, fb, row)

        dt = t_col - self._last_occ_time
        if dt > 0:
            # ``stats.observe("occupancy", ...)`` inlined: same float ops,
            # same accumulators.
            stats._wsum["occupancy"] += self._buffered * dt
            stats._wweight["occupancy"] += dt
            self._last_occ_time = t_col
        if t_col > self.time:
            self.time = t_col
        counters["serviced"] += 1
        counters["bytes"] += self._line_bytes
        tenant = req.tenant
        if tenant >= 0:
            # Per-tenant accounting, mirroring the scalar oracle exactly.
            counters[f"tenant{tenant}_serviced"] += 1
            counters[f"tenant{tenant}_bytes"] += self._line_bytes
            if req.row_hit:
                counters[f"tenant{tenant}_row_hits"] += 1
        mins = stats.mins
        cur = mins.get("first_arrival")
        if cur is None or arrival < cur:
            mins["first_arrival"] = arrival
        maxs = stats.maxs
        cur = maxs.get("last_finish")
        if cur is None or req.finish > cur:
            maxs["last_finish"] = req.finish
        self._req[rid] = None
        return req

    def service_until_done(self, req: DRAMRequest) -> None:
        while req.finish < 0:
            if self.service_one() is None:
                raise RuntimeError("request never enqueued on this channel")

    def drain(self) -> None:
        while self.service_one() is not None:
            pass

    # ------------------------------------------------------------- metrics

    def row_buffer_hit_rate(self) -> float:
        """Fraction of serviced requests that hit an open row."""
        serviced = self.stats.get("serviced")
        if serviced == 0:
            return 0.0
        return self.stats.get("row_hits") / serviced

    def mean_occupancy(self) -> float:
        return self.stats.mean("occupancy")

"""Request scheduling policies for the memory controller.

FR-FCFS (first-ready, first-come-first-served) prefers requests that hit the
currently open row of their bank — the industry-standard policy the paper's
baseline uses (Table 3) — falling back to the oldest request.  FCFS is
provided as an ablation baseline.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.bank import BankState


class Scheduler(Protocol):
    def pick(self, buffer: Sequence[tuple[DRAMRequest, DRAMCoord]],
             banks: dict[tuple, BankState],
             last_was_write: bool = False, now: int = 0) -> int:
        """Return the index of the next request in ``buffer`` to service."""


class FCFS:
    """Strict arrival-order scheduling."""

    def pick(self, buffer, banks, last_was_write: bool = False,
             now: int = 0) -> int:
        best = 0
        for i, (req, _) in enumerate(buffer):
            if req.arrival < buffer[best][0].arrival:
                best = i
        return best


class FRFCFS:
    """First-ready FCFS with read/write grouping.

    Preference order: oldest row-buffer hit *matching the bus's current
    transfer direction*, then oldest row-buffer hit, then the oldest
    request.  Direction grouping models the write-buffering every modern
    controller performs to avoid paying the bus-turnaround penalty on
    each alternation.  A starvation cap ages requests: once the oldest
    buffered request has waited ``age_cap`` cycles it is serviced
    regardless of row state (real FR-FCFS implementations bound reordering
    the same way).
    """

    def __init__(self, age_cap: int = 2000) -> None:
        self.age_cap = age_cap

    def pick(self, buffer, banks, last_was_write: bool = False,
             now: int = 0) -> int:
        best_dir_hit = -1
        best_dir_arrival = None
        best_hit = -1
        best_hit_arrival = None
        best_any = 0
        best_any_arrival = buffer[0][0].arrival
        for i, (req, coord) in enumerate(buffer):
            if req.arrival < best_any_arrival:
                best_any = i
                best_any_arrival = req.arrival
            bank = banks.get(coord.flat_bank)
            if bank is not None and bank.is_hit(coord.row):
                if best_hit < 0 or req.arrival < best_hit_arrival:
                    best_hit = i
                    best_hit_arrival = req.arrival
                if req.is_write == last_was_write and (
                        best_dir_hit < 0 or req.arrival < best_dir_arrival):
                    best_dir_hit = i
                    best_dir_arrival = req.arrival
        if now - buffer[best_any][0].arrival > self.age_cap:
            return best_any
        if best_dir_hit >= 0:
            return best_dir_hit
        return best_hit if best_hit >= 0 else best_any


def make_scheduler(name: str) -> Scheduler:
    if name == "frfcfs":
        return FRFCFS()
    if name == "fcfs":
        return FCFS()
    raise ValueError(f"unknown scheduler {name!r}")

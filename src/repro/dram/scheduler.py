"""Request scheduling policies for the memory controller.

FR-FCFS (first-ready, first-come-first-served) prefers requests that hit the
currently open row of their bank — the industry-standard policy the paper's
baseline uses (Table 3) — falling back to the oldest request.  FCFS is
provided as an ablation baseline.

Two implementations exist per policy:

* ``ReferenceFRFCFS`` / ``ReferenceFCFS`` — the original linear scans over
  the whole request buffer.  They are stateless, trivially correct, and kept
  as the oracle the differential tests compare against
  (``tests/dram/test_scheduler_differential.py``).
* ``FRFCFS`` / ``FCFS`` — the production schedulers.  They still answer the
  stateless :meth:`pick` protocol (delegating to the reference scan), but
  additionally expose an *indexed* interface the controller drives
  incrementally: :meth:`insert` on buffer refill, ``notify_activate`` /
  ``notify_precharge`` as bank state changes, and :meth:`take` to pop the
  next request.  The common pick — the oldest direction-matching row hit —
  then costs a few heap peeks instead of an O(buffer) rescan, which was the
  single largest line item of a profiled run (~24% of wall time).

The index reproduces the reference pick order *exactly*, including the
age-cap override and the tie-break on equal arrivals (earlier buffer
insertion wins): every candidate set is ordered by ``(arrival, seq)`` where
``seq`` is the monotone insertion number, which is precisely the order a
first-match linear scan over the buffer discovers minima in.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Protocol, Sequence

from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.bank import BankState


class Scheduler(Protocol):
    """The stateless pick protocol every scheduler satisfies.

    ``last_was_write`` and ``now`` carry no defaults here: the controller
    always passes them, and the protocol advertises exactly that contract
    (implementations may still default them for direct/test callers).
    """

    def pick(self, buffer: Sequence[tuple[DRAMRequest, DRAMCoord]],
             banks: dict[tuple, BankState],
             last_was_write: bool, now: int) -> int:
        """Return the index of the next request in ``buffer`` to service."""
        ...


# ------------------------------------------------------- reference scans

class ReferenceFCFS:
    """Strict arrival-order scheduling, by linear scan (the oracle)."""

    def pick(self, buffer, banks, last_was_write: bool = False,
             now: int = 0) -> int:
        best = 0
        for i, (req, _) in enumerate(buffer):
            if req.arrival < buffer[best][0].arrival:
                best = i
        return best


class ReferenceFRFCFS:
    """First-ready FCFS with read/write grouping, by linear scan.

    Preference order: oldest row-buffer hit *matching the bus's current
    transfer direction*, then oldest row-buffer hit, then the oldest
    request.  Direction grouping models the write-buffering every modern
    controller performs to avoid paying the bus-turnaround penalty on
    each alternation.  A starvation cap ages requests: once the oldest
    buffered request has waited ``age_cap`` cycles it is serviced
    regardless of row state (real FR-FCFS implementations bound reordering
    the same way).
    """

    def __init__(self, age_cap: int = 2000) -> None:
        self.age_cap = age_cap

    def pick(self, buffer, banks, last_was_write: bool = False,
             now: int = 0) -> int:
        best_dir_hit = -1
        best_dir_arrival = None
        best_hit = -1
        best_hit_arrival = None
        best_any = 0
        best_any_arrival = buffer[0][0].arrival
        for i, (req, coord) in enumerate(buffer):
            if req.arrival < best_any_arrival:
                best_any = i
                best_any_arrival = req.arrival
            bank = banks.get(coord.flat_bank)
            if bank is not None and bank.is_hit(coord.row):
                if best_hit < 0 or req.arrival < best_hit_arrival:
                    best_hit = i
                    best_hit_arrival = req.arrival
                if req.is_write == last_was_write and (
                        best_dir_hit < 0 or req.arrival < best_dir_arrival):
                    best_dir_hit = i
                    best_dir_arrival = req.arrival
        if now - buffer[best_any][0].arrival > self.age_cap:
            return best_any
        if best_dir_hit >= 0:
            return best_dir_hit
        return best_hit if best_hit >= 0 else best_any


# --------------------------------------------------------- indexed variants

class _Entry:
    """One buffered request inside the scheduler index."""

    __slots__ = ("arrival", "seq", "item", "alive")

    def __init__(self, arrival: int, seq: int, item) -> None:
        self.arrival = arrival
        self.seq = seq
        self.item = item
        self.alive = True


class FCFS(ReferenceFCFS):
    """Arrival-order scheduling with an incrementally-maintained index.

    Buffer insertion order is *not* guaranteed to be arrival order: the
    input queue is FIFO in *enqueue* order, and producers (interleaved
    cores, LLC writebacks stamped with a bus-time hint) enqueue with
    arrival timestamps that can run backwards across producers.  A plain
    pop-left would therefore mis-order ties with out-of-order arrivals, so
    the index is a min-heap on ``(arrival, seq)``: the oldest request is an
    O(1) peek away and every pop is one O(log buffer) sift instead of the
    reference's O(buffer) rescan.  Since FCFS always services the heap
    minimum, no lazy deletion is ever needed.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, tuple]] = []
        self._seq = 0

    # Indexed interface driven by the controller.

    def insert(self, item: tuple[DRAMRequest, DRAMCoord]) -> None:
        heappush(self._heap, (item[0].arrival, self._seq, item))
        self._seq += 1

    def take(self, last_was_write: bool, now: int) -> tuple:
        """Pop and return the oldest buffered (request, coord) item."""
        return heappop(self._heap)[2]


class FRFCFS(ReferenceFRFCFS):
    """FR-FCFS with an incrementally-maintained open-row-hit index.

    State mirrors exactly what the reference scan recomputes per pick:

    * ``_any`` — a min-heap of every buffered request by (arrival, seq),
      answering "oldest request" for the age-cap check and the no-hit
      fallback;
    * ``_groups`` — per (bank, row, direction) heaps of pending requests;
    * ``_open`` — each bank's currently open row, maintained by the
      controller's ``notify_activate`` / ``notify_precharge`` callbacks;
    * ``_hot`` — the subset of banks whose open row has pending requests:
      the row-hit candidates.  A pick scans only the hot banks' heap heads
      (usually zero or one) instead of the whole buffer.

    Requests taken out of arrival order leave dead entries behind in the
    heaps; they are popped lazily when they surface and compacted away
    wholesale if they ever outnumber live entries (buffer occupancy is
    bounded by the controller, so compaction is rare and O(buffer)).
    """

    def __init__(self, age_cap: int = 2000) -> None:
        super().__init__(age_cap)
        # Observability probe (:class:`repro.obs.events._SchedulerProbe`):
        # stamped with this scheduler's channel when an EventBus attaches;
        # publishes age-cap (starvation) overrides.  None when off.
        self.obs = None
        self._seq = 0
        self._live = 0
        self._dead = 0
        self._any: list[tuple[int, int, _Entry]] = []
        # flat_bank -> row -> (read_heap, write_heap)
        self._groups: dict[tuple, dict[int, tuple[list, list]]] = {}
        self._open: dict[tuple, int] = {}
        self._hot: dict[tuple, tuple[list, list]] = {}

    # ------------------------------------------------- controller callbacks

    def insert(self, item: tuple[DRAMRequest, DRAMCoord]) -> None:
        req, coord = item
        entry = _Entry(req.arrival, self._seq, item)
        self._seq += 1
        self._live += 1
        node = (entry.arrival, entry.seq, entry)
        heappush(self._any, node)
        fb = coord.flat_bank
        rows = self._groups.get(fb)
        if rows is None:
            rows = self._groups[fb] = {}
        pair = rows.get(coord.row)
        if pair is None:
            pair = rows[coord.row] = ([], [])
        heappush(pair[1] if req.is_write else pair[0], node)
        if self._open.get(fb) == coord.row:
            self._hot[fb] = pair

    def notify_activate(self, flat_bank: tuple, row: int) -> None:
        self._open[flat_bank] = row
        rows = self._groups.get(flat_bank)
        pair = rows.get(row) if rows is not None else None
        if pair is not None and (pair[0] or pair[1]):
            self._hot[flat_bank] = pair
        else:
            self._hot.pop(flat_bank, None)

    def notify_precharge(self, flat_bank: tuple) -> None:
        self._open.pop(flat_bank, None)
        self._hot.pop(flat_bank, None)

    # ------------------------------------------------------------- picking

    def take(self, last_was_write: bool, now: int) -> tuple:
        """Pop and return the next (request, coord) item to service.

        Reproduces :meth:`ReferenceFRFCFS.pick` order exactly; see the
        differential tests.
        """
        any_heap = self._any
        while not any_heap[0][2].alive:
            heappop(any_heap)
            self._dead -= 1
        oldest = any_heap[0]
        if now - oldest[0] > self.age_cap:
            chosen = oldest[2]
            if self.obs is not None:
                self.obs.starvation(now)
        else:
            best_dir = best_hit = None
            hot = self._hot
            stale = None
            for fb, pair in hot.items():
                read_heap, write_heap = pair
                while read_heap and not read_heap[0][2].alive:
                    heappop(read_heap)
                    self._dead -= 1
                while write_heap and not write_heap[0][2].alive:
                    heappop(write_heap)
                    self._dead -= 1
                if read_heap:
                    head = read_heap[0]
                    if best_hit is None or head < best_hit:
                        best_hit = head
                    if not last_was_write and (
                            best_dir is None or head < best_dir):
                        best_dir = head
                if write_heap:
                    head = write_heap[0]
                    if best_hit is None or head < best_hit:
                        best_hit = head
                    if last_was_write and (
                            best_dir is None or head < best_dir):
                        best_dir = head
                elif not read_heap:
                    stale = [fb] if stale is None else stale + [fb]
            if stale is not None:
                for fb in stale:
                    del hot[fb]
            if best_dir is not None:
                chosen = best_dir[2]
            elif best_hit is not None:
                chosen = best_hit[2]
            else:
                chosen = oldest[2]
        chosen.alive = False
        self._live -= 1
        self._dead += 1
        if self._dead > 64 and self._dead > 2 * self._live:
            self._compact()
        return chosen.item

    # ------------------------------------------------------------ plumbing

    def _compact(self) -> None:
        """Drop dead entries from every heap and rebuild the hot set."""
        self._any = [node for node in self._any if node[2].alive]
        heapify(self._any)
        for rows in self._groups.values():
            for row in list(rows):
                read_heap, write_heap = rows[row]
                read_heap[:] = [n for n in read_heap if n[2].alive]
                write_heap[:] = [n for n in write_heap if n[2].alive]
                if read_heap:
                    heapify(read_heap)
                if write_heap:
                    heapify(write_heap)
                if not read_heap and not write_heap:
                    del rows[row]
        self._hot = {}
        for fb, row in self._open.items():
            rows = self._groups.get(fb)
            pair = rows.get(row) if rows is not None else None
            if pair is not None and (pair[0] or pair[1]):
                self._hot[fb] = pair
        self._dead = 0


def make_scheduler(name: str) -> Scheduler:
    """Build a scheduler by policy name.

    ``frfcfs`` / ``fcfs`` are the production (indexed) implementations;
    ``ref-frfcfs`` / ``ref-fcfs`` select the linear-scan oracles (useful
    for differential testing and ablations).
    """
    if name == "frfcfs":
        return FRFCFS()
    if name == "fcfs":
        return FCFS()
    if name == "ref-frfcfs":
        return ReferenceFRFCFS()
    if name == "ref-fcfs":
        return ReferenceFCFS()
    raise ValueError(f"unknown scheduler {name!r}")

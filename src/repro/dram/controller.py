"""One per-channel memory controller.

The controller owns a bounded *request buffer* (32 entries in the paper's
configuration) which is the scheduler's reordering window: only buffered
requests are visible to FR-FCFS.  Requests beyond the buffer wait in an
unbounded input queue, modelling the MSHR-to-controller path.  The
time-weighted occupancy of the visible buffer is the "request buffer
occupancy" metric of Figure 10(c).

Scheduling is demand-driven: producers enqueue requests with arrival
timestamps and later ask the controller to service until a particular
request (or all requests) complete.  Commands for different banks overlap
through per-bank ready times; the channel column/data bus is the global
serialization point, so controller time advances monotonically along column
command issue times.

Schedulers come in two flavours (see :mod:`repro.dram.scheduler`): indexed
ones expose ``insert``/``take`` plus bank-state callbacks and are driven
incrementally — the controller feeds them on buffer refill and notifies
them of every ACT/PRE so the next pick is a few heap peeks; stateless ones
only answer :meth:`Scheduler.pick` over the whole buffer and are rescanned
per pick (the reference/oracle path).
"""

from __future__ import annotations

from collections import deque

from repro.common.config import DRAMConfig
from repro.common.stats import Stats
from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import BankState, ChannelBusState, RankState
from repro.dram.scheduler import make_scheduler


class MemoryController:
    """Timing model of a single DDR4 channel."""

    def __init__(self, channel: int, config: DRAMConfig,
                 mapper: AddressMapper, scheduler=None,
                 command_log_limit: int | None = None) -> None:
        self.channel = channel
        self.config = config
        self.timing = config.timing
        self.mapper = mapper
        self.scheduler = scheduler or make_scheduler(config.scheduler)
        self.banks: dict[tuple, BankState] = {}
        # Ranks are created eagerly: the refresh schedule ticks for every
        # rank from cycle zero, not just ranks that have seen traffic.
        self.ranks: dict[int, RankState] = {
            r: RankState() for r in range(config.ranks)
        }
        # Per-rank all-bank refresh every tREFI (blocking tRFC).  The hot
        # path pays one comparison against the earliest pending REF point.
        if config.refresh:
            for rank in self.ranks.values():
                rank.next_ref = self.timing.tREFI
            self._next_ref = self.timing.tREFI
        else:
            self._next_ref = 1 << 62
        self.bus = ChannelBusState()
        self.buffer: list[tuple[DRAMRequest, DRAMCoord]] = []
        self.input_queue: deque[tuple[DRAMRequest, DRAMCoord]] = deque()
        self.time = 0
        self.stats = Stats()
        self._last_occ_time = 0
        self._buffer_cap = config.request_buffer
        self._line_bytes = config.line_bytes
        # Indexed-scheduler fast path: feed inserts/takes and bank-state
        # changes to the scheduler instead of rescanning the buffer.
        self._sched_take = getattr(self.scheduler, "take", None)
        self._sched_insert = getattr(self.scheduler, "insert", None)
        self._on_activate = getattr(self.scheduler, "notify_activate", None)
        self._on_precharge = getattr(self.scheduler, "notify_precharge", None)
        # Command-stream observers: each is called as
        # ``obs(kind, cycle, (channel, rank, bankgroup, bank), row)`` at the
        # moment a command's issue cycle is decided.  The legality auditor
        # (:class:`repro.dram.audit.CommandAuditor`), the observability
        # event bus (:class:`repro.obs.events.EventBus` — row-open tracks
        # and the sampled timeline hang off this stream), and the legacy
        # ``command_log`` recorder all attach here.
        self.command_observers: list = []
        self.command_log: list[tuple] = []
        # Far-memory link (:class:`repro.dram.remote.RemoteLink`), shared
        # across channels; assigned by :class:`~repro.dram.system.DRAMSystem`
        # when the remote tier is enabled.  None = all addresses are local.
        self.remote = None
        # Bound on ``command_log`` growth (None = unlimited, the default).
        # A full sweep with ``record_commands`` on accumulates hundreds of
        # thousands of command tuples per channel; with a limit the log
        # keeps the *first* ``command_log_limit`` commands (a legal prefix,
        # still replayable through the auditor) and counts the rest in the
        # ``command_log_dropped`` statistic.
        self.command_log_limit = command_log_limit

    # ------------------------------------------------------------- observers

    @property
    def record_commands(self) -> bool:
        """Whether commands are appended to ``command_log`` (legacy API)."""
        return self._record_command in self.command_observers

    @record_commands.setter
    def record_commands(self, value: bool) -> None:
        recording = self.record_commands
        if value and not recording:
            self.command_observers.append(self._record_command)
        elif not value and recording:
            self.command_observers.remove(self._record_command)

    def _record_command(self, kind: str, cycle: int, bank: tuple,
                        row: int) -> None:
        limit = self.command_log_limit
        if limit is not None and len(self.command_log) >= limit:
            self.stats.add("command_log_dropped")
            return
        self.command_log.append((kind, cycle, bank, row))

    def _emit(self, kind: str, cycle: int, coord: DRAMCoord) -> None:
        for obs in self.command_observers:
            obs(kind, cycle, coord.flat_bank, coord.row)

    # ------------------------------------------------------------- producers

    def enqueue(self, req: DRAMRequest) -> None:
        """Accept a request; it becomes schedulable once ``time`` reaches its
        arrival and a buffer slot frees up."""
        self.enqueue_coord(req, self.mapper.map(req.addr))

    def enqueue_coord(self, req: DRAMRequest, coord: DRAMCoord) -> None:
        """Accept a request whose address is already decoded (the system
        routes on the decode, so the controller need not re-map)."""
        if coord.channel != self.channel:
            raise ValueError(
                f"request for channel {coord.channel} routed to {self.channel}"
            )
        self.input_queue.append((req, coord))
        counters = self.stats.counters
        counters["requests"] += 1
        counters["writes" if req.is_write else "reads"] += 1

    def enqueue_decoded(self, req: DRAMRequest, rank: int, bankgroup: int,
                        bank: int, row: int) -> None:
        """Pre-decoded enqueue (batch-decode callers).

        The scalar oracle re-derives the coordinate from the address — the
        memoized map shares one ``DRAMCoord`` per line, so this is a dict
        hit — which keeps the oracle independent of callers' decode math.
        """
        self.enqueue_coord(req, self.mapper.map(req.addr))

    @property
    def pending(self) -> int:
        return len(self.buffer) + len(self.input_queue)

    def next_event(self) -> int | None:
        """Earliest cycle this channel has schedulable work, or None.

        Buffered requests are serviceable at the controller's current time;
        an empty buffer skips ahead to the head-of-queue arrival.  The
        system-level drain orders channels by this value so cross-channel
        command emission stays roughly in time order.
        """
        if self.buffer:
            return self.time
        if self.input_queue:
            arrival = self.input_queue[0][0].arrival
            return arrival if arrival > self.time else self.time
        return None

    # ------------------------------------------------------------- scheduling

    def _refill(self) -> None:
        """Move arrived requests into free buffer slots, oldest first."""
        queue = self.input_queue
        if not queue:
            return
        buffer = self.buffer
        cap = self._buffer_cap
        now = self.time
        insert = self._sched_insert
        while queue and len(buffer) < cap and queue[0][0].arrival <= now:
            item = queue.popleft()
            buffer.append(item)
            if insert is not None:
                insert(item)

    def _note_occupancy(self, now: int) -> None:
        dt = now - self._last_occ_time
        if dt > 0:
            self.stats.observe("occupancy", len(self.buffer), dt)
            self._last_occ_time = now

    def service_one(self) -> DRAMRequest | None:
        """Schedule and complete one request; returns it, or None if idle."""
        self._refill()
        buffer = self.buffer
        if not buffer:
            if not self.input_queue:
                return None
            # Idle gap: jump to the next arrival.
            self._note_occupancy(self.time)
            self.time = max(self.time, self.input_queue[0][0].arrival)
            self._last_occ_time = self.time
            self._refill()
        take = self._sched_take
        if take is not None:
            item = take(self.bus.last_was_write, self.time)
            for i, held in enumerate(buffer):
                if held is item:
                    del buffer[i]
                    break
            req, coord = item
        else:
            idx = self.scheduler.pick(buffer, self.banks,
                                      self.bus.last_was_write, self.time)
            req, coord = buffer.pop(idx)
        self._execute(req, coord)
        return req

    def service_until_done(self, req: DRAMRequest) -> None:
        while req.finish < 0:
            if self.service_one() is None:
                raise RuntimeError("request never enqueued on this channel")

    def drain(self) -> None:
        while self.service_one() is not None:
            pass

    # ------------------------------------------------------------- execution

    def _bank(self, coord: DRAMCoord) -> BankState:
        state = self.banks.get(coord.flat_bank)
        if state is None:
            state = BankState()
            self.banks[coord.flat_bank] = state
        return state

    def _rank(self, coord: DRAMCoord) -> RankState:
        return self.ranks[coord.rank]

    def _refresh_catch_up(self, now: int) -> None:
        """Issue every REF whose tREFI point has passed, on every rank.

        An all-bank REF first closes any open rows in the rank (emitting the
        PREs), then blocks the whole rank for tRFC; banks touched later see
        the block through ``RankState.ref_done`` in the ACT path.  The
        schedule is fixed at multiples of tREFI — a late REF does not slip
        the next one.
        """
        timing = self.timing
        observers = self.command_observers
        counters = self.stats.counters
        on_precharge = self._on_precharge
        for rank_id, rank in self.ranks.items():
            while rank.next_ref <= now:
                due = rank.next_ref
                t_ref = due if due > rank.ref_done else rank.ref_done
                # Sorted iteration: the PREs closing a rank's open rows are
                # emitted in (rank, bankgroup, bank) order, matching the
                # batched engine's dense bank-id order command for command.
                for fb in sorted(self.banks):
                    if fb[1] != rank_id:
                        continue
                    bank = self.banks[fb]
                    if bank.open_row is not None:
                        t_pre = bank.pre_ready
                        if due > t_pre:
                            t_pre = due
                        row = bank.open_row
                        bank.precharge(t_pre, timing)
                        if on_precharge is not None:
                            on_precharge(fb)
                        if observers:
                            for obs in observers:
                                obs("PRE", t_pre, fb, row)
                        counters["refresh_row_closes"] += 1
                    if bank.act_ready > t_ref:
                        t_ref = bank.act_ready
                if observers:
                    fb = (self.channel, rank_id, 0, 0)
                    for obs in observers:
                        obs("REF", t_ref, fb, -1)
                counters["refreshes"] += 1
                rank.ref_done = t_ref + timing.tRFC
                rank.next_ref = due + timing.tREFI
        self._next_ref = min(r.next_ref for r in self.ranks.values())

    def _execute(self, req: DRAMRequest, coord: DRAMCoord) -> None:
        timing = self.timing
        counters = self.stats.counters
        observers = self.command_observers
        flat_bank = coord.flat_bank
        bank = self.banks.get(flat_bank)
        if bank is None:
            bank = BankState()
            self.banks[flat_bank] = bank
        earliest = self.time
        if req.arrival > earliest:
            earliest = req.arrival
        if earliest >= self._next_ref:
            # Refresh points have passed: catch up before the row-state
            # check — a REF closes every open row in its rank.
            self._refresh_catch_up(earliest)

        if bank.open_row == coord.row:
            counters["row_hits"] += 1
            req.row_hit = True
            t_col_min = bank.col_ready
            if earliest > t_col_min:
                t_col_min = earliest
        else:
            rank = self.ranks[coord.rank]
            if bank.open_row is not None:
                counters["row_conflicts"] += 1
                t_pre = bank.pre_ready
                if earliest > t_pre:
                    t_pre = earliest
                old_row = bank.open_row
                bank.precharge(t_pre, timing)
                if self._on_precharge is not None:
                    self._on_precharge(flat_bank)
                if observers:
                    # A PRE reports the row it closes (as on the refresh
                    # path), not the conflicting requester's row.
                    for obs in observers:
                        obs("PRE", t_pre, flat_bank, old_row)
            else:
                counters["row_empty"] += 1
            t_act = bank.act_ready
            if earliest > t_act:
                t_act = earliest
            rank_ready = rank.earliest_act(coord.bankgroup, timing)
            if rank_ready > t_act:
                t_act = rank_ready
            if rank.ref_done > t_act:
                t_act = rank.ref_done
            bank.activate(coord.row, t_act, timing)
            rank.record_act(coord.bankgroup, t_act)
            if self._on_activate is not None:
                self._on_activate(flat_bank, coord.row)
            if observers:
                self._emit("ACT", t_act, coord)
            t_col_min = bank.col_ready

        bus = self.bus
        t_col = bus.earliest_col(coord.bankgroup, req.is_write, timing)
        if t_col_min > t_col:
            t_col = t_col_min
        bus.record_col(coord.bankgroup, t_col, req.is_write, timing)
        if observers:
            self._emit("WR" if req.is_write else "RD", t_col, coord)
        if req.is_write:
            bank.column_write(t_col, timing)
            req.finish = t_col + timing.tCWL + timing.tBL
        else:
            bank.column_read(t_col, timing)
            req.finish = t_col + timing.tCL + timing.tBL
        req.start = t_col
        if req.far:
            # Far-memory tier: route the completion through the shared
            # link's return path (same call site in both engines, so the
            # link state evolves identically — the bitwise guarantee).
            remote = self.remote
            if remote is not None:
                req.finish = remote.deliver(req.finish, req.is_write)
        if self.config.page_policy == "closed":
            # Auto-precharge (RDA/WRA): close the row as soon as legal.
            # Must follow column_read/column_write so pre_ready reflects
            # the column command's tRTP / tWR recovery window.
            t_pre = bank.pre_ready
            bank.precharge(t_pre, timing)
            if self._on_precharge is not None:
                self._on_precharge(flat_bank)
            if observers:
                self._emit("PRE", t_pre, coord)

        self._note_occupancy(t_col)
        if t_col > self.time:
            self.time = t_col
        counters["serviced"] += 1
        counters["bytes"] += self._line_bytes
        tenant = req.tenant
        if tenant >= 0:
            # Per-tenant accounting (serving layer).  Tags never alter the
            # schedule above, only these counters.
            counters[f"tenant{tenant}_serviced"] += 1
            counters[f"tenant{tenant}_bytes"] += self._line_bytes
            if req.row_hit:
                counters[f"tenant{tenant}_row_hits"] += 1
        stats = self.stats
        mins = stats.mins
        cur = mins.get("first_arrival")
        if cur is None or req.arrival < cur:
            mins["first_arrival"] = req.arrival
        maxs = stats.maxs
        cur = maxs.get("last_finish")
        if cur is None or req.finish > cur:
            maxs["last_finish"] = req.finish

    # ------------------------------------------------------------- metrics

    def row_buffer_hit_rate(self) -> float:
        """Fraction of serviced requests that hit an open row."""
        serviced = self.stats.get("serviced")
        if serviced == 0:
            return 0.0
        return self.stats.get("row_hits") / serviced

    def mean_occupancy(self) -> float:
        return self.stats.mean("occupancy")

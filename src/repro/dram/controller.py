"""One per-channel memory controller.

The controller owns a bounded *request buffer* (32 entries in the paper's
configuration) which is the scheduler's reordering window: only buffered
requests are visible to FR-FCFS.  Requests beyond the buffer wait in an
unbounded input queue, modelling the MSHR-to-controller path.  The
time-weighted occupancy of the visible buffer is the "request buffer
occupancy" metric of Figure 10(c).

Scheduling is demand-driven: producers enqueue requests with arrival
timestamps and later ask the controller to service until a particular
request (or all requests) complete.  Commands for different banks overlap
through per-bank ready times; the channel column/data bus is the global
serialization point, so controller time advances monotonically along column
command issue times.
"""

from __future__ import annotations

from collections import deque

from repro.common.config import DRAMConfig
from repro.common.stats import Stats
from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import BankState, ChannelBusState, RankState
from repro.dram.scheduler import make_scheduler


class MemoryController:
    """Timing model of a single DDR4 channel."""

    def __init__(self, channel: int, config: DRAMConfig,
                 mapper: AddressMapper) -> None:
        self.channel = channel
        self.config = config
        self.timing = config.timing
        self.mapper = mapper
        self.scheduler = make_scheduler(config.scheduler)
        self.banks: dict[tuple, BankState] = {}
        self.ranks: dict[int, RankState] = {}
        self.bus = ChannelBusState()
        self.buffer: list[tuple[DRAMRequest, DRAMCoord]] = []
        self.input_queue: deque[tuple[DRAMRequest, DRAMCoord]] = deque()
        self.time = 0
        self.stats = Stats()
        self._last_occ_time = 0
        # Command-stream observers: each is called as
        # ``obs(kind, cycle, (channel, rank, bankgroup, bank), row)`` at the
        # moment a command's issue cycle is decided.  The legality auditor
        # (:class:`repro.dram.audit.CommandAuditor`) and the legacy
        # ``command_log`` recorder both attach here.
        self.command_observers: list = []
        self.command_log: list[tuple] = []

    # ------------------------------------------------------------- observers

    @property
    def record_commands(self) -> bool:
        """Whether commands are appended to ``command_log`` (legacy API)."""
        return self._record_command in self.command_observers

    @record_commands.setter
    def record_commands(self, value: bool) -> None:
        recording = self.record_commands
        if value and not recording:
            self.command_observers.append(self._record_command)
        elif not value and recording:
            self.command_observers.remove(self._record_command)

    def _record_command(self, kind: str, cycle: int, bank: tuple,
                        row: int) -> None:
        self.command_log.append((kind, cycle, bank, row))

    def _emit(self, kind: str, cycle: int, coord: DRAMCoord) -> None:
        for obs in self.command_observers:
            obs(kind, cycle, coord.flat_bank, coord.row)

    # ------------------------------------------------------------- producers

    def enqueue(self, req: DRAMRequest) -> None:
        """Accept a request; it becomes schedulable once ``time`` reaches its
        arrival and a buffer slot frees up."""
        coord = self.mapper.map(req.addr)
        if coord.channel != self.channel:
            raise ValueError(
                f"request for channel {coord.channel} routed to {self.channel}"
            )
        self.input_queue.append((req, coord))
        self.stats.add("requests")
        if req.is_write:
            self.stats.add("writes")
        else:
            self.stats.add("reads")

    @property
    def pending(self) -> int:
        return len(self.buffer) + len(self.input_queue)

    # ------------------------------------------------------------- scheduling

    def _refill(self) -> None:
        """Move arrived requests into free buffer slots, oldest first."""
        while (self.input_queue
               and len(self.buffer) < self.config.request_buffer
               and self.input_queue[0][0].arrival <= self.time):
            self.buffer.append(self.input_queue.popleft())

    def _note_occupancy(self, now: int) -> None:
        dt = now - self._last_occ_time
        if dt > 0:
            self.stats.observe("occupancy", len(self.buffer), dt)
            self._last_occ_time = now

    def service_one(self) -> DRAMRequest | None:
        """Schedule and complete one request; returns it, or None if idle."""
        self._refill()
        if not self.buffer:
            if not self.input_queue:
                return None
            # Idle gap: jump to the next arrival.
            self._note_occupancy(self.time)
            self.time = max(self.time, self.input_queue[0][0].arrival)
            self._last_occ_time = self.time
            self._refill()
        idx = self.scheduler.pick(self.buffer, self.banks,
                                  self.bus.last_was_write, self.time)
        req, coord = self.buffer.pop(idx)
        self._execute(req, coord)
        return req

    def service_until_done(self, req: DRAMRequest) -> None:
        while not req.done:
            if self.service_one() is None:
                raise RuntimeError("request never enqueued on this channel")

    def drain(self) -> None:
        while self.service_one() is not None:
            pass

    # ------------------------------------------------------------- execution

    def _bank(self, coord: DRAMCoord) -> BankState:
        state = self.banks.get(coord.flat_bank)
        if state is None:
            state = BankState()
            self.banks[coord.flat_bank] = state
        return state

    def _rank(self, coord: DRAMCoord) -> RankState:
        state = self.ranks.get(coord.rank)
        if state is None:
            state = RankState()
            self.ranks[coord.rank] = state
        return state

    def _execute(self, req: DRAMRequest, coord: DRAMCoord) -> None:
        timing = self.timing
        bank = self._bank(coord)
        rank = self._rank(coord)
        earliest = max(self.time, req.arrival)

        if bank.is_hit(coord.row):
            self.stats.add("row_hits")
            req.row_hit = True
            t_col_min = max(earliest, bank.col_ready)
        else:
            if bank.open_row is not None:
                self.stats.add("row_conflicts")
                t_pre = max(earliest, bank.pre_ready)
                bank.precharge(t_pre, timing)
                self._emit("PRE", t_pre, coord)
            else:
                self.stats.add("row_empty")
            t_act = max(earliest, bank.act_ready,
                        rank.earliest_act(coord.bankgroup, timing))
            bank.activate(coord.row, t_act, timing)
            rank.record_act(coord.bankgroup, t_act)
            self._emit("ACT", t_act, coord)
            t_col_min = bank.col_ready

        t_col = max(
            t_col_min,
            self.bus.earliest_col(coord.bankgroup, req.is_write, timing),
        )
        self.bus.record_col(coord.bankgroup, t_col, req.is_write, timing)
        self._emit("WR" if req.is_write else "RD", t_col, coord)
        if req.is_write:
            bank.column_write(t_col, timing)
            req.finish = t_col + timing.tCWL + timing.tBL
        else:
            bank.column_read(t_col, timing)
            req.finish = t_col + timing.tCL + timing.tBL
        req.start = t_col
        if self.config.page_policy == "closed":
            # Auto-precharge (RDA/WRA): close the row as soon as legal.
            # Must follow column_read/column_write so pre_ready reflects
            # the column command's tRTP / tWR recovery window.
            t_pre = bank.pre_ready
            bank.precharge(t_pre, timing)
            self._emit("PRE", t_pre, coord)

        self._note_occupancy(t_col)
        self.time = max(self.time, t_col)
        self.stats.add("serviced")
        self.stats.add("bytes", self.config.line_bytes)
        self.stats.note_min("first_arrival", req.arrival)
        self.stats.note_max("last_finish", req.finish)

    # ------------------------------------------------------------- metrics

    def row_buffer_hit_rate(self) -> float:
        """Fraction of serviced requests that hit an open row."""
        serviced = self.stats.get("serviced")
        if serviced == 0:
            return 0.0
        return self.stats.get("row_hits") / serviced

    def mean_occupancy(self) -> float:
        return self.stats.mean("occupancy")

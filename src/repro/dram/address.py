"""Physical-address to DRAM-coordinate mapping.

The mapper slices a physical address (above the 64B line offset) into
channel / bank-group / column / bank / rank / row fields.  The default field
order, from least-significant bit upward, is::

    offset(6) | channel | bankgroup | column | bank | rank | row

so that consecutive cache lines alternate channels first and bank groups
second — the interleaving a stream needs to reach peak bandwidth (Section
2.1) — while lines within one (channel, bank group) stay in the same row.
The order is configurable so experiments (and property tests) can explore
other layouts.
"""

from __future__ import annotations

import math

from repro.common.config import DRAMConfig
from repro.common.types import DRAMCoord

DEFAULT_ORDER = ("channel", "bankgroup", "column", "bank", "rank", "row")


class AddressMapper:
    """Bijective mapping between physical line addresses and DRAM coords."""

    def __init__(self, config: DRAMConfig,
                 order: tuple[str, ...] = DEFAULT_ORDER) -> None:
        widths = {
            "channel": _log2(config.channels),
            "rank": _log2(config.ranks),
            "bankgroup": _log2(config.bankgroups),
            "bank": _log2(config.banks_per_group),
            "row": _log2(config.rows),
            "column": _log2(config.columns),
        }
        if set(order) != set(widths):
            raise ValueError(f"order must name each field once, got {order}")
        self.config = config
        self.order = order
        self.offset_bits = _log2(config.line_bytes)
        self._fields: list[tuple[str, int, int]] = []  # (name, shift, width)
        shift = self.offset_bits
        for name in order:
            self._fields.append((name, shift, widths[name]))
            shift += widths[name]
        self.total_bits = shift
        # Decode plan specialized per field, shifted down to line-index
        # space (addr >> offset_bits) so one key covers every byte offset
        # within a line: (shift, mask) pairs in DRAMCoord argument order.
        plan = {
            name: (fshift - self.offset_bits, (1 << width) - 1)
            for name, fshift, width in self._fields
        }
        self._decode = tuple(
            plan[name] for name in
            ("channel", "rank", "bankgroup", "bank", "row", "column")
        )
        # Line-index -> DRAMCoord memo.  Indirect workloads revisit the
        # same lines heavily (indices repeat across tiles), so decodes hit
        # this dict far more often than they compute.  Coordinates are
        # immutable once built, so sharing one object per line is safe.
        self._map_cache: dict[int, DRAMCoord] = {}
        self._map_cache_cap = 1 << 17

    def map(self, addr: int) -> DRAMCoord:
        """Decode a physical byte address into DRAM coordinates."""
        key = addr >> self.offset_bits
        coord = self._map_cache.get(key)
        if coord is None:
            if len(self._map_cache) >= self._map_cache_cap:
                self._map_cache.clear()
            d = self._decode
            coord = DRAMCoord(
                (key >> d[0][0]) & d[0][1],
                (key >> d[1][0]) & d[1][1],
                (key >> d[2][0]) & d[2][1],
                (key >> d[3][0]) & d[3][1],
                (key >> d[4][0]) & d[4][1],
                (key >> d[5][0]) & d[5][1],
            )
            self._map_cache[key] = coord
        return coord

    def unmap(self, coord: DRAMCoord) -> int:
        """Reconstruct the (line-aligned) physical address of a coordinate."""
        values = {
            "channel": coord.channel,
            "rank": coord.rank,
            "bankgroup": coord.bankgroup,
            "bank": coord.bank,
            "row": coord.row,
            "column": coord.column,
        }
        addr = 0
        for name, shift, width in self._fields:
            value = values[name]
            if value >= (1 << width):
                raise ValueError(f"{name}={value} exceeds {width} bits")
            addr |= value << shift
        return addr

    def line_addr(self, addr: int) -> int:
        return addr & ~(self.config.line_bytes - 1)

    def map_arrays(self, addrs) -> dict[str, "np.ndarray"]:
        """Vectorized :meth:`map` for NumPy address arrays.

        Returns a dict of field-name -> array, plus ``"flat_bank"`` (a single
        integer key combining channel/rank/bankgroup/bank, in ascending
        interleave priority) and ``"line"`` (line-aligned addresses).  Used
        by the DX100 indirect unit to decode a whole tile at once.
        """
        import numpy as np

        addrs = np.asarray(addrs, dtype=np.int64)
        out: dict[str, np.ndarray] = {}
        for name, shift, width in self._fields:
            out[name] = (addrs >> shift) & ((1 << width) - 1)
        cfg = self.config
        out["flat_bank"] = (
            ((out["rank"] * cfg.bankgroups + out["bankgroup"])
             * cfg.banks_per_group + out["bank"]) * cfg.channels
            + out["channel"]
        )
        out["line"] = addrs & ~np.int64(cfg.line_bytes - 1)
        return out

    def compose(self, channel: int = 0, rank: int = 0, bankgroup: int = 0,
                bank: int = 0, row: int = 0, column: int = 0,
                offset: int = 0) -> int:
        """Build an address from explicit coordinates (test/workload helper)."""
        coord = DRAMCoord(channel=channel, rank=rank, bankgroup=bankgroup,
                          bank=bank, row=row, column=column)
        return self.unmap(coord) | offset


def _log2(n: int) -> int:
    bits = int(math.log2(n)) if n > 0 else 0
    if n <= 0 or (1 << bits) != n:
        raise ValueError(f"DRAM geometry values must be powers of two, got {n}")
    return bits

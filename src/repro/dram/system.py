"""Multi-channel DRAM system: routing, draining, and merged metrics."""

from __future__ import annotations

from repro.common.config import CYCLE_NS, DRAMConfig
from repro.common.stats import Stats
from repro.common.types import DRAMRequest
from repro.dram.address import AddressMapper
from repro.dram.audit import CommandAuditor
from repro.dram.controller import MemoryController


class DRAMSystem:
    """All memory channels behind a single enqueue/complete interface.

    ``audit=True`` (or ``config.audit``) attaches one
    :class:`~repro.dram.audit.CommandAuditor` to every channel's command
    stream, checking the full JEDEC constraint set online; see
    :meth:`audit_violations` / :meth:`assert_audit_clean`.
    """

    def __init__(self, config: DRAMConfig | None = None,
                 mapper: AddressMapper | None = None,
                 audit: bool | None = None) -> None:
        self.config = config or DRAMConfig()
        self.mapper = mapper or AddressMapper(self.config)
        self.controllers = [
            MemoryController(ch, self.config, self.mapper)
            for ch in range(self.config.channels)
        ]
        self.auditor: CommandAuditor | None = None
        if self.config.audit if audit is None else audit:
            self.auditor = CommandAuditor(self.config.timing)
            for ctrl in self.controllers:
                self.auditor.attach(ctrl)

    # ------------------------------------------------------------- auditing

    def audit_violations(self) -> list:
        """Timing violations recorded so far (empty when not auditing)."""
        return [] if self.auditor is None else self.auditor.violations

    def assert_audit_clean(self) -> None:
        """Raise :class:`~repro.dram.audit.TimingViolationError` if the
        auditor saw any illegal command."""
        if self.auditor is not None:
            self.auditor.assert_clean()

    def channel_of(self, addr: int) -> int:
        return self.mapper.map(addr).channel

    def enqueue(self, req: DRAMRequest) -> MemoryController:
        ctrl = self.controllers[self.channel_of(req.addr)]
        ctrl.enqueue(req)
        return ctrl

    def access(self, addr: int, is_write: bool, arrival: int,
               meta: object = None) -> DRAMRequest:
        """Convenience: enqueue a line request and return its record."""
        req = DRAMRequest(addr=addr, is_write=is_write, arrival=arrival,
                          meta=meta)
        self.enqueue(req)
        return req

    def complete(self, req: DRAMRequest) -> int:
        """Service the owning channel until ``req`` finishes; returns that
        cycle."""
        if not req.done:
            ctrl = self.controllers[self.channel_of(req.addr)]
            ctrl.service_until_done(req)
        return req.finish

    def drain(self) -> None:
        for ctrl in self.controllers:
            ctrl.drain()

    # ------------------------------------------------------------- metrics

    def merged_stats(self) -> Stats:
        stats = Stats()
        for ctrl in self.controllers:
            stats.merge(ctrl.stats)
        return stats

    def row_buffer_hit_rate(self) -> float:
        serviced = sum(c.stats.get("serviced") for c in self.controllers)
        if serviced == 0:
            return 0.0
        hits = sum(c.stats.get("row_hits") for c in self.controllers)
        return hits / serviced

    def mean_occupancy(self) -> float:
        """Mean request-buffer occupancy across channels (Fig. 10c)."""
        vals = [c.mean_occupancy() for c in self.controllers
                if c.stats.get("serviced") > 0]
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def total_bytes(self) -> float:
        return sum(c.stats.get("bytes") for c in self.controllers)

    def bandwidth_utilization(self, elapsed_cycles: int) -> float:
        """Achieved fraction of the peak DRAM bandwidth over ``elapsed``."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles * CYCLE_NS * 1e-9
        achieved = self.total_bytes() / seconds / 1e9  # GB/s
        return achieved / self.config.peak_bw_gbps

    def last_finish(self) -> int:
        return int(max(
            (c.stats.get("last_finish") for c in self.controllers), default=0
        ))

"""Multi-channel DRAM system: routing, draining, and merged metrics."""

from __future__ import annotations

from heapq import heapify, heappop, heappush

from repro.common.config import CYCLE_NS, DRAMConfig
from repro.common.stats import Stats
from repro.common.types import DRAMRequest
from repro.dram.address import AddressMapper
from repro.dram.audit import CommandAuditor
from repro.dram.batched import BatchedController
from repro.dram.controller import MemoryController
from repro.dram.remote import RemoteLink


class DRAMSystem:
    """All memory channels behind a single enqueue/complete interface.

    ``config.engine`` selects the per-channel engine: ``"batched"`` (the
    structure-of-arrays production engine,
    :class:`~repro.dram.batched.BatchedController`) or ``"scalar"`` (the
    per-request oracle, :class:`~repro.dram.controller.MemoryController`).
    Both produce bitwise-identical command streams and metrics; reference
    (``ref-*``) schedulers are only available on the scalar engine, so the
    system falls back to it for those.

    ``audit=True`` (or ``config.audit``) attaches one
    :class:`~repro.dram.audit.CommandAuditor` to every channel's command
    stream, checking the full JEDEC constraint set online; see
    :meth:`audit_violations` / :meth:`assert_audit_clean`.
    """

    def __init__(self, config: DRAMConfig | None = None,
                 mapper: AddressMapper | None = None,
                 audit: bool | None = None) -> None:
        self.config = config or DRAMConfig()
        self.mapper = mapper or AddressMapper(self.config)
        engine = self.config.engine
        if engine not in ("batched", "scalar"):
            raise ValueError(f"unknown DRAM engine {engine!r}")
        if engine == "batched" and self.config.scheduler in ("frfcfs", "fcfs"):
            controller_cls = BatchedController
        else:
            controller_cls = MemoryController
        self.controllers = [
            controller_cls(ch, self.config, self.mapper)
            for ch in range(self.config.channels)
        ]
        # Far-memory tier: one link shared by every channel (one physical
        # port), referenced by each controller for the return traversal.
        self.remote: RemoteLink | None = None
        if self.config.remote.enabled:
            self.remote = RemoteLink(self.config.remote,
                                     self.config.line_bytes)
            for ctrl in self.controllers:
                ctrl.remote = self.remote
        self.auditor: CommandAuditor | None = None
        if self.config.audit if audit is None else audit:
            self.auditor = CommandAuditor(self.config.timing,
                                          refresh=self.config.refresh)
            for ctrl in self.controllers:
                self.auditor.attach(ctrl)

    # ------------------------------------------------------------- auditing

    def audit_violations(self) -> list:
        """Timing violations recorded so far (empty when not auditing)."""
        return [] if self.auditor is None else self.auditor.violations

    def assert_audit_clean(self) -> None:
        """Raise :class:`~repro.dram.audit.TimingViolationError` if the
        auditor saw any illegal command."""
        if self.auditor is not None:
            self.auditor.assert_clean()

    def channel_of(self, addr: int) -> int:
        return self.mapper.map(addr).channel

    def enqueue(self, req: DRAMRequest):
        remote = self.remote
        if remote is not None and remote.is_far(req.addr):
            req.far = True
            req.arrival = remote.inject(req.arrival, req.is_write)
        coord = self.mapper.map(req.addr)
        req.channel = coord.channel
        ctrl = self.controllers[coord.channel]
        ctrl.enqueue_coord(req, coord)
        return ctrl

    def access(self, addr: int, is_write: bool, arrival: int,
               meta: object = None, decoded: tuple | None = None,
               tenant: int = -1) -> DRAMRequest:
        """Convenience: enqueue a line request and return its record.

        ``decoded`` is an optional pre-decoded ``(channel, rank, bankgroup,
        bank, row)`` tuple — callers that decoded a whole tile through
        :meth:`AddressMapper.map_arrays` pass it to skip the per-line map.
        ``tenant`` tags the request for per-tenant accounting (-1 =
        untagged); the tag never changes how the request is scheduled.
        """
        req = DRAMRequest(addr, is_write, arrival, meta, -1, tenant)
        remote = self.remote
        if remote is not None and remote.is_far(addr):
            req.far = True
            req.arrival = remote.inject(arrival, is_write)
        if decoded is None:
            # ``mapper.map`` with the memo-hit path inlined (one call per
            # demand miss; the cache hits far more often than it computes).
            mapper = self.mapper
            coord = mapper._map_cache.get(addr >> mapper.offset_bits)
            if coord is None:
                coord = mapper.map(addr)
            req.channel = coord.channel
            self.controllers[coord.channel].enqueue_coord(req, coord)
        else:
            req.channel = decoded[0]
            self.controllers[decoded[0]].enqueue_decoded(
                req, decoded[1], decoded[2], decoded[3], decoded[4])
        return req

    def complete(self, req: DRAMRequest) -> int:
        """Service the owning channel until ``req`` finishes; returns that
        cycle."""
        if req.finish < 0:
            channel = req.channel
            if channel < 0:
                channel = self.channel_of(req.addr)
            self.controllers[channel].service_until_done(req)
        return req.finish

    def drain(self) -> None:
        """Service every channel to completion.

        Channels are independent, but the drain advances them through a
        next-event heap — always servicing the channel whose next
        schedulable cycle is earliest, in event batches bounded by the
        runner-up channel's next event — so skipped idle gaps never run a
        channel far ahead and cross-channel command/observer emission stays
        roughly in time order.
        """
        controllers = self.controllers
        if len(controllers) == 1:
            controllers[0].drain()
            return
        heap = []
        for index, ctrl in enumerate(controllers):
            t = ctrl.next_event()
            if t is not None:
                heap.append((t, index))
        heapify(heap)
        while heap:
            _, index = heappop(heap)
            ctrl = controllers[index]
            bound = heap[0][0] if heap else None
            while True:
                if ctrl.service_one() is None:
                    break
                t = ctrl.next_event()
                if t is None:
                    break
                if bound is not None and t > bound:
                    heappush(heap, (t, index))
                    break

    # ------------------------------------------------------------- metrics

    def merged_stats(self) -> Stats:
        stats = Stats()
        for ctrl in self.controllers:
            stats.merge(ctrl.stats)
        if self.remote is not None:
            stats.merge(self.remote.stats)
        return stats

    def tenant_counters(self, tenant: int) -> dict[str, int]:
        """Summed per-tenant counters across channels.

        Returns ``{"serviced": ..., "bytes": ..., "row_hits": ...}`` for the
        given tenant id (all zero if it issued no tagged traffic).
        """
        out = {"serviced": 0, "bytes": 0, "row_hits": 0}
        for ctrl in self.controllers:
            counters = ctrl.stats.counters
            for key in out:
                out[key] += int(counters.get(f"tenant{tenant}_{key}", 0))
        return out

    def row_buffer_hit_rate(self) -> float:
        serviced = sum(c.stats.get("serviced") for c in self.controllers)
        if serviced == 0:
            return 0.0
        hits = sum(c.stats.get("row_hits") for c in self.controllers)
        return hits / serviced

    def mean_occupancy(self) -> float:
        """Mean request-buffer occupancy across channels (Fig. 10c)."""
        vals = [c.mean_occupancy() for c in self.controllers
                if c.stats.get("serviced") > 0]
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def total_bytes(self) -> float:
        return sum(c.stats.get("bytes") for c in self.controllers)

    def bandwidth_utilization(self, elapsed_cycles: int) -> float:
        """Achieved fraction of the peak DRAM bandwidth over ``elapsed``."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles * CYCLE_NS * 1e-9
        achieved = self.total_bytes() / seconds / 1e9  # GB/s
        return achieved / self.config.peak_bw_gbps

    def last_finish(self) -> int:
        return int(max(
            (c.stats.get("last_finish") for c in self.controllers), default=0
        ))
